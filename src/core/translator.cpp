#include "core/translator.h"

#include <cstdio>

#include "core/mutation.h"
#include "http/chunked.h"
#include "http/header_util.h"

namespace hdiff::core {

namespace {

using http::RequestSpec;

/// Assertion synthesis: pick the strongest entailed role action.
std::optional<Assertion> build_assertion(const SrRecord& sr) {
  std::optional<Assertion> best;
  int best_rank = -1;
  for (const auto& conv : sr.conversions) {
    const text::Hypothesis& h = conv.hypothesis;
    if (!h.action || !h.role) continue;
    Assertion a;
    a.role = *h.role;
    a.sr_id = sr.id;
    int rank = -1;
    if (*h.action == text::Action::kRespond && h.status_code) {
      a.expect_status = *h.status_code;
      a.expect_reject = *h.status_code >= 400;
      rank = 3;
    } else if (*h.action == text::Action::kReject && !h.negated) {
      a.expect_reject = true;
      rank = 2;
    } else if (*h.action == text::Action::kTreat && !h.negated &&
               sr.polarity == text::SentimentPolarity::kObligation) {
      // "MUST treat it as an unrecoverable error"
      a.expect_reject = true;
      rank = 1;
    } else if (*h.action == text::Action::kForward && h.negated) {
      a.expect_not_forward = true;
      rank = 2;
    } else if (*h.action == text::Action::kGenerate && h.negated) {
      // Sender-side prohibition: receivers of such a message face an
      // ambiguous construct; no receiver assertion, but still useful as a
      // not-forward expectation for intermediaries.
      a.role = text::Role::kProxy;
      a.expect_not_forward = true;
      rank = 0;
    }
    if (rank > best_rank) {
      best_rank = rank;
      best = a;
    }
  }
  return best;
}

/// Per-request assertion selection: inherit the SR's entailed assertion,
/// suppress it (the request is RFC-valid and no behaviour is mandated), or
/// attach a recipe-specific one (the manually-authored part of the paper's
/// "SR semantic definitions").
struct CaseAssertion {
  enum class Mode { kEntailed, kNone, kCustom };
  Mode mode = Mode::kEntailed;
  Assertion custom;
};

/// A generation recipe bound to one (field, modifier) pair.
struct Recipe {
  std::string field;
  std::string modifier;
  AttackClass category = AttackClass::kGeneric;
  std::string vector_label;
  std::vector<RequestSpec> requests;
  std::vector<std::string> notes;         ///< parallel to requests
  std::vector<CaseAssertion> assertions;  ///< parallel to requests
};

void add(Recipe& r, RequestSpec spec, std::string note) {
  r.requests.push_back(std::move(spec));
  r.notes.push_back(std::move(note));
  r.assertions.push_back({});
}

/// Add a request that is RFC-*valid*: no assertion applies to it.
void add_valid(Recipe& r, RequestSpec spec, std::string note) {
  r.requests.push_back(std::move(spec));
  r.notes.push_back(std::move(note));
  r.assertions.push_back({CaseAssertion::Mode::kNone, {}});
}

/// Add a request with a recipe-authored assertion.
void add_assert(Recipe& r, RequestSpec spec, std::string note, Assertion a) {
  r.requests.push_back(std::move(spec));
  r.notes.push_back(std::move(note));
  r.assertions.push_back({CaseAssertion::Mode::kCustom, std::move(a)});
}

/// "Recipients MUST treat this framing as an error": reject when acting as
/// a server, do not forward when acting as an intermediary.
Assertion framing_error_assertion(std::string sr_id) {
  Assertion a;
  a.role = text::Role::kRecipient;
  a.expect_reject = true;
  a.expect_not_forward = true;
  a.sr_id = std::move(sr_id);
  return a;
}

RequestSpec base_get() { return http::make_get("h1.com"); }

RequestSpec base_post(std::string_view body) {
  return http::make_post("h1.com", "/", body);
}

/// The SR semantic definitions (manual input #2): how to realize each
/// message-description modifier per field as concrete wire requests.
std::optional<Recipe> build_recipe(const text::Hypothesis& h,
                                   const abnf::Generator& gen,
                                   std::size_t value_budget,
                                   const std::string& sr_id) {
  if (!h.field || !h.modifier) return std::nullopt;
  const Assertion framing = framing_error_assertion(sr_id);
  Recipe r;
  r.field = *h.field;
  r.modifier = *h.modifier;

  const std::string& field = *h.field;
  const std::string& mod = *h.modifier;

  if (field == "host") {
    r.category = AttackClass::kHot;
    if (mod == "invalid") {
      r.vector_label = "Invalid Host header";
      for (std::string_view v :
           {"h1.com@h2.com", "h1.com, h2.com", "h1.com/.//test?",
            "h1.com/../h2.com", "h1.com h2.com", "h1.com:8a"}) {
        RequestSpec s = base_get();
        s.set("Host", v);
        add(r, std::move(s), "Host: " + std::string(v));
      }
      // ABNF-derived valid hosts with slight distortion.
      for (const auto& host : gen.enumerate("uri-host", value_budget)) {
        RequestSpec s = base_get();
        s.set("Host", host + "@h2.com");
        add(r, std::move(s), "ABNF host + userinfo trick");
      }
    } else if (mod == "multiple") {
      r.vector_label = "Multiple Host headers";
      RequestSpec s = base_get();
      s.add("Host", "h2.com");
      add(r, std::move(s), "two Host headers");
      RequestSpec sc = base_get();
      sc.headers.insert(sc.headers.begin(),
                        http::HeaderSpec{"\x0bHost", "h0.com"});
      add(r, std::move(sc), "[sc]Host + Host");
    } else if (mod == "missing") {
      r.vector_label = "Missing Host header";
      r.category = AttackClass::kCpdos;
      RequestSpec s;
      add(r, std::move(s), "HTTP/1.1 without Host");
    } else if (mod == "whitespace") {
      r.vector_label = "Invalid Host header";
      RequestSpec s = base_get();
      s.headers[0].name = "Host ";
      add(r, std::move(s), "whitespace before colon on Host");
      RequestSpec fold = base_get();
      fold.headers[0].value = "h1.com\t\nh2.com";
      add(r, std::move(fold), "obs-fold-ish Host continuation");
    } else if (mod == "empty") {
      r.vector_label = "Invalid Host header";
      RequestSpec s = base_get();
      s.set("Host", "");
      add(r, std::move(s), "empty Host value");
    } else {
      return std::nullopt;
    }
    return r;
  }

  if (field == "content-length") {
    r.category = AttackClass::kHrs;
    if (mod == "invalid") {
      r.vector_label = "Invalid CL/TE header";
      for (std::string_view v : {"+6", "6,9", "0x06", "6 6", "abc",
                                 "99999999999999999999999999"}) {
        RequestSpec s = base_post("AAAAAA");
        s.set("Content-Length", v);
        add_assert(r, std::move(s), "Content-Length: " + std::string(v),
                   framing);
      }
    } else if (mod == "multiple") {
      r.vector_label = "Multiple CL/TE headers";
      {
        RequestSpec s = base_post("AAAAAAAAAA");
        s.add("Content-Length", "0");
        add_assert(r, std::move(s), "differing duplicate Content-Length",
                   framing);
      }
      {
        // Identical duplicates may legally be collapsed (RFC 7230 §3.3.2);
        // no behaviour is mandated, so this case is discrepancy-only.
        RequestSpec s = base_post("AAAAAAAAAA");
        s.add("Content-Length", "10");
        add_valid(r, std::move(s), "identical duplicate Content-Length");
      }
      {
        RequestSpec s = base_post("AAAAAAAAAA");
        s.set("Content-Length", "10, 10");
        add_valid(r, std::move(s), "list-valued Content-Length 10, 10");
      }
      {
        RequestSpec s = base_post("AAAAAA");
        s.set("Content-Length", "6, 9");
        add_assert(r, std::move(s), "list-valued Content-Length 6, 9",
                   framing);
      }
    } else if (mod == "whitespace") {
      r.vector_label = "Invalid CL/TE header";
      RequestSpec s = base_post("AAAAAA");
      s.headers[1].name = "Content-Length ";
      add_assert(r, std::move(s),
                 "whitespace before colon on Content-Length", framing);
    } else {
      return std::nullopt;
    }
    return r;
  }

  if (field == "transfer-encoding" || field == "transfer-coding") {
    r.category = AttackClass::kHrs;
    const std::string chunked_body = "3\r\nabc\r\n0\r\n\r\n";
    auto chunked_post = [&](std::string_view te_value) {
      RequestSpec s;
      s.method = "POST";
      s.add("Host", "h1.com");
      s.add("Transfer-Encoding", te_value);
      s.body = chunked_body;
      return s;
    };
    if (mod == "invalid") {
      r.vector_label = "Invalid CL/TE header";
      for (std::string_view v :
           {"\x0b" "chunked", "xchunked", "chu nked", "chunked;ext=1",
            "gzip, chunked, deflate"}) {
        add_assert(r, chunked_post(v), "Transfer-Encoding: <mangled>",
                   framing);
      }
      {
        RequestSpec s = chunked_post("chunked");
        s.headers[1].name = "\x0bTransfer-Encoding";
        add_assert(r, std::move(s), "[sc]Transfer-Encoding name", framing);
      }
      {
        RequestSpec s = chunked_post("chunked");
        s.headers[1].name = "Transfer-Encoding\x0b";
        add_assert(r, std::move(s), "Transfer-Encoding[sc] name", framing);
      }
    } else if (mod == "multiple") {
      r.vector_label = "Multiple CL/TE headers";
      {
        RequestSpec s = chunked_post("chunked");
        s.add("Transfer-Encoding", "chunked");
        add_assert(r, std::move(s), "duplicate Transfer-Encoding", framing);
      }
      {
        // CL + TE: the canonical smuggling shape — "ought to be handled as
        // an error" (RFC 7230 §3.3.3).
        RequestSpec s = chunked_post("chunked");
        s.add("Content-Length", std::to_string(chunked_body.size()));
        add_assert(r, std::move(s), "Content-Length and Transfer-Encoding",
                   framing);
      }
      {
        // Mangled TE + CL covering a smuggled request suffix: lenient
        // recipients that honour the mangled TE terminate the body at the
        // zero chunk and expose the suffix as a next request.
        RequestSpec s = chunked_post("chunked");
        s.headers[1].name = "Transfer-Encoding\x0b";
        s.body = "0\r\n\r\nGET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";
        s.add("Content-Length", std::to_string(s.body.size()));
        add_assert(r, std::move(s), "mangled TE + CL with smuggled suffix",
                   framing);
      }
    } else if (mod == "whitespace") {
      r.vector_label = "Invalid CL/TE header";
      RequestSpec s = chunked_post("chunked");
      s.headers[1].name = "Transfer-Encoding ";
      add_assert(r, std::move(s),
                 "whitespace before colon on Transfer-Encoding", framing);
    } else if (mod == "obsolete") {
      r.vector_label = "Obsoleted header or value";
      add_assert(r, chunked_post("chunked, identity"),
                 "obsolete identity transfer coding", framing);
    } else {
      return std::nullopt;
    }
    return r;
  }

  if (field == "chunk-size" || field == "chunk-data") {
    r.category = AttackClass::kHrs;
    if (mod == "invalid") {
      r.vector_label = "Bad chunk-size value";
      auto chunked = [&](std::string_view body) {
        RequestSpec s;
        s.method = "POST";
        s.add("Host", "h1.com");
        s.add("Transfer-Encoding", "chunked");
        s.body.assign(body);
        return s;
      };
      add_assert(r, chunked("100000000a\r\nabc\r\n0\r\n\r\n"),
                 "chunk-size wider than 32 bits", framing);
      add_assert(r, chunked("0xfgh\r\nabc\r\n9\r\n0\r\n\r\n"),
                 "non-hex chunk-size", framing);
      add_assert(r, chunked("5\r\nabc\r\n0\r\n\r\n"),
                 "chunk-size larger than chunk-data", framing);
      // chunk-data is 1*OCTET — a NUL byte is grammatically legal, so this
      // case is discrepancy-only.
      std::string nul_body = "5\r\nab";
      nul_body.push_back('\0');
      nul_body += "cd\r\n0\r\n\r\n";
      add_valid(r, chunked(nul_body), "NUL byte inside chunk-data");
      return r;
    }
    return std::nullopt;
  }

  if (field == "expect") {
    r.category = AttackClass::kCpdos;
    r.vector_label = "Expect header";
    if (mod == "invalid") {
      RequestSpec s = base_get();
      s.add("Expect", "100-continuce");
      add(r, std::move(s), "typo'd expectation value");
      RequestSpec g = base_get();
      g.add("Expect", "100-continue");
      add(r, std::move(g), "100-continue on bodyless GET");
      return r;
    }
    return std::nullopt;
  }

  if (field == "connection") {
    r.category = AttackClass::kCpdos;
    r.vector_label = "Hop-by-Hop headers";
    if (mod == "invalid" || mod == "multiple") {
      RequestSpec s = base_get();
      s.add("Connection", "close, Host");
      add(r, std::move(s), "Connection names Host");
      RequestSpec c = base_get();
      c.add("Cookie", "session=1");
      c.add("Connection", "Cookie");
      add(r, std::move(c), "Connection names Cookie");
      return r;
    }
    return std::nullopt;
  }

  if (field == "http-version" || field == "request-line") {
    r.category = AttackClass::kCpdos;
    r.vector_label = "Invalid HTTP-version";
    if (mod == "invalid") {
      for (std::string_view v :
           {"1.1/HTTP", "HTTP/3-1", "hTTP/1.1", "HTTP/1,1", "HTTP/11",
            "HTTP/1.1.1"}) {
        RequestSpec s = base_get();
        s.target = "/?a=b";
        s.version.assign(v);
        add(r, std::move(s), "version token " + std::string(v));
      }
      return r;
    }
    return std::nullopt;
  }

  if (field == "message-body") {
    r.category = AttackClass::kHrs;
    r.vector_label = "Fat HEAD/GET request";
    RequestSpec g = base_get();
    g.add("Content-Length", "5");
    g.body = "AAAAA";
    add(r, std::move(g), "GET with Content-Length body");
    RequestSpec h2 = base_get();
    h2.method = "HEAD";
    h2.add("Content-Length", "5");
    h2.body = "AAAAA";
    add(r, std::move(h2), "HEAD with Content-Length body");
    return r;
  }

  return std::nullopt;
}

}  // namespace

SrTranslator::SrTranslator(const abnf::Grammar& grammar,
                           TranslatorConfig config)
    : generator_(grammar), config_(config) {
  abnf::load_default_http_predefined(generator_);
}

std::string SrTranslator::next_uuid(std::string_view sr_id) const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "-t%05zu", uuid_counter_++);
  return std::string(sr_id) + buf;
}

std::vector<TestCase> SrTranslator::translate(const SrRecord& sr) const {
  std::vector<TestCase> out;
  std::optional<Assertion> assertion = build_assertion(sr);

  for (const auto& conv : sr.conversions) {
    auto recipe = build_recipe(conv.hypothesis, generator_,
                               config_.values_per_recipe, sr.id);
    if (!recipe) continue;
    for (std::size_t i = 0; i < recipe->requests.size(); ++i) {
      TestCase tc;
      tc.uuid = next_uuid(sr.id);
      tc.raw = recipe->requests[i].to_wire();
      tc.description = recipe->notes[i];
      tc.vector_label = recipe->vector_label;
      tc.origin = TestOrigin::kSrTranslator;
      tc.category = recipe->category;
      switch (recipe->assertions[i].mode) {
        case CaseAssertion::Mode::kEntailed:
          tc.assertion = assertion;
          break;
        case CaseAssertion::Mode::kNone:
          tc.assertion.reset();
          break;
        case CaseAssertion::Mode::kCustom:
          tc.assertion = recipe->assertions[i].custom;
          break;
      }
      out.push_back(std::move(tc));

      if (config_.include_mutations) {
        MutationOptions mo;
        mo.max_mutants = config_.mutants_per_case;
        for (auto& mutant : mutate(recipe->requests[i], mo)) {
          TestCase mc;
          mc.uuid = next_uuid(sr.id);
          mc.raw = mutant.spec.to_wire();
          mc.description =
              recipe->notes[i] + " + " + mutant.applied.front().describe();
          mc.vector_label = recipe->vector_label;
          mc.origin = TestOrigin::kMutation;
          mc.category = recipe->category;
          // Mutations may invalidate the SR's precondition; keep the case
          // for difference analysis but drop the assertion.
          out.push_back(std::move(mc));
        }
      }
    }
  }
  return out;
}

std::vector<TestCase> SrTranslator::translate_all(
    const std::vector<SrRecord>& srs) const {
  std::vector<TestCase> out;
  for (const auto& sr : srs) {
    auto cases = translate(sr);
    out.insert(out.end(), std::make_move_iterator(cases.begin()),
               std::make_move_iterator(cases.end()));
  }
  return out;
}

}  // namespace hdiff::core
