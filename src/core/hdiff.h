// Top-level HDiff pipeline (Figure 3): Documentation Analyzer feeding
// Differential Testing.
//
// `Pipeline::run()` executes the whole flow the paper describes:
//   RFC corpus -> {SRs, ABNF grammar} -> {SR translator, ABNF generator}
//   -> test cases -> chain observation (Figure 6) -> detection models ->
//   findings (violations, affected pairs, Table I matrix).
// Each stage is also available separately for experiments and ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/abnf_testgen.h"
#include "core/analyzer.h"
#include "core/detect.h"
#include "core/executor.h"
#include "core/translator.h"
#include "net/chain.h"

namespace hdiff::core {

struct PipelineConfig {
  AnalyzerConfig analyzer;
  TranslatorConfig translator;
  AbnfGenConfig abnf_gen;
  /// Cap on ABNF-generated cases actually pushed through the chain (the
  /// full set is still generated and counted for statistics).  0 = all.
  std::size_t abnf_run_budget = 2000;
  /// Include the Table II verification probe set alongside the generated
  /// cases (disable to measure the generators in isolation).
  bool include_probes = true;
  /// Documents to analyze; empty = the HTTP/1.1 core six.
  std::vector<std::string_view> documents;
  /// Differential-testing stage: worker count, memoization, echo bound,
  /// and the fault-degradation policy (`executor.retry`: attempts, backoff,
  /// per-case deadline).  Findings are identical for every setting (see
  /// executor.h); only time and memory change — and under harness faults,
  /// how many cases end up quarantined rather than observed.
  ExecutorConfig executor;
  /// Optional tracing/metrics for the whole pipeline (obs.h): one span and
  /// one `hdiff_stage_<name>_micros` gauge per stage, plus everything the
  /// executor emits.  Propagated to the executor unless `executor.obs` is
  /// already enabled.  Findings are byte-identical with obs on or off.
  obs::Observability obs;
};

/// Wall-clock of one pipeline stage (microseconds, monotonic clock).
struct StageTiming {
  std::string stage;
  std::uint64_t micros = 0;
};

struct PipelineResult {
  AnalyzerResult analysis;
  std::size_t sr_case_count = 0;
  std::size_t abnf_case_count = 0;
  std::vector<TestCase> executed_cases;
  DetectionResult findings;
  VulnMatrix matrix;
  /// Throughput and degradation accounting for the differential stage
  /// (jobs used, memo and verdict-cache hit rates, echo retention, fault/
  /// retry counters and the per-case quarantine report).  `findings` never
  /// contains fault-induced differentials: faulted cases are retried and,
  /// failing that, listed in `exec_stats.quarantined` instead.
  ExecutorStats exec_stats;
  /// Per-stage wall clock, in execution order (always populated — stage
  /// timing costs two clock reads per stage, so it is not gated on obs).
  std::vector<StageTiming> stage_timings;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  /// Run end-to-end against the full ten-product fleet.
  PipelineResult run() const;

  /// Run against a caller-supplied fleet (useful for focused experiments).
  PipelineResult run(
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet)
      const;

 private:
  PipelineConfig config_;
};

}  // namespace hdiff::core
