#include "core/abnf_testgen.h"

#include <cstdio>

#include "core/mutation.h"
#include "http/serialize.h"

namespace hdiff::core {

std::string_view to_string(EmbedPosition p) noexcept {
  switch (p) {
    case EmbedPosition::kHostHeader: return "host-header";
    case EmbedPosition::kRequestTarget: return "request-target";
    case EmbedPosition::kHttpVersion: return "http-version";
    case EmbedPosition::kTransferEncoding: return "transfer-encoding";
    case EmbedPosition::kContentLength: return "content-length";
    case EmbedPosition::kMethod: return "method";
    case EmbedPosition::kFieldLine: return "field-line";
    case EmbedPosition::kChunkedBody: return "chunked-body";
  }
  return "?";
}

std::vector<AbnfTarget> default_abnf_targets() {
  return {
      {"Host", EmbedPosition::kHostHeader},
      {"uri-host", EmbedPosition::kHostHeader},
      {"request-target", EmbedPosition::kRequestTarget},
      {"origin-form", EmbedPosition::kRequestTarget},
      {"absolute-form", EmbedPosition::kRequestTarget},
      {"HTTP-version", EmbedPosition::kHttpVersion},
      {"Transfer-Encoding", EmbedPosition::kTransferEncoding},
      {"transfer-coding", EmbedPosition::kTransferEncoding},
      {"Content-Length", EmbedPosition::kContentLength},
      {"method", EmbedPosition::kMethod},
      {"header-field", EmbedPosition::kFieldLine},
      {"chunked-body", EmbedPosition::kChunkedBody},
  };
}

AbnfTestGen::AbnfTestGen(const abnf::Grammar& grammar, AbnfGenConfig config)
    : generator_(grammar), config_(config) {
  abnf::load_default_http_predefined(generator_);
}

namespace {

AttackClass category_for(EmbedPosition p) {
  switch (p) {
    case EmbedPosition::kHostHeader:
    case EmbedPosition::kRequestTarget:
      return AttackClass::kHot;
    case EmbedPosition::kTransferEncoding:
    case EmbedPosition::kContentLength:
      return AttackClass::kHrs;
    case EmbedPosition::kHttpVersion:
    case EmbedPosition::kMethod:
      return AttackClass::kCpdos;
    case EmbedPosition::kChunkedBody:
      return AttackClass::kHrs;
    case EmbedPosition::kFieldLine:
      return AttackClass::kGeneric;
  }
  return AttackClass::kGeneric;
}

}  // namespace

http::RequestSpec embed_value(EmbedPosition position,
                              const std::string& value) {
  http::RequestSpec spec = http::make_get("h1.com");
  switch (position) {
    case EmbedPosition::kHostHeader:
      spec.set("Host", value);
      break;
    case EmbedPosition::kRequestTarget:
      spec.target = value.empty() ? "/" : value;
      break;
    case EmbedPosition::kHttpVersion:
      spec.version = value;
      break;
    case EmbedPosition::kTransferEncoding:
      spec.method = "POST";
      spec.add("Transfer-Encoding", value);
      spec.body = "3\r\nabc\r\n0\r\n\r\n";
      break;
    case EmbedPosition::kContentLength:
      spec.method = "POST";
      spec.add("Content-Length", value);
      spec.body = "AAAAAAAA";
      break;
    case EmbedPosition::kMethod:
      spec.method = value;
      break;
    case EmbedPosition::kFieldLine: {
      // `value` is a whole "name: value" line derived from header-field.
      std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        spec.add(http::HeaderSpec{value, "", "", "\r\n"});
      } else {
        spec.add(value.substr(0, colon), value.substr(colon + 1));
      }
      break;
    }
    case EmbedPosition::kChunkedBody:
      spec.method = "POST";
      spec.add("Transfer-Encoding", "chunked");
      spec.body = value;
      break;
  }
  return spec;
}

std::vector<TestCase> AbnfTestGen::generate(
    const std::vector<AbnfTarget>& targets_in) const {
  const std::vector<AbnfTarget> targets =
      targets_in.empty() ? default_abnf_targets() : targets_in;
  std::vector<TestCase> out;
  std::size_t counter = 0;

  for (const auto& target : targets) {
    std::vector<std::string> values =
        generator_.enumerate(target.rule, config_.values_per_target);
    for (std::size_t vi = 0; vi < values.size(); ++vi) {
      http::RequestSpec spec = embed_value(target.position, values[vi]);
      TestCase tc;
      char buf[32];
      std::snprintf(buf, sizeof buf, "abnf-%06zu", counter++);
      tc.uuid = buf;
      tc.raw = spec.to_wire();
      tc.description = "ABNF " + target.rule + " @ " +
                       std::string(to_string(target.position));
      tc.origin = TestOrigin::kAbnfGenerator;
      tc.category = category_for(target.position);
      out.push_back(std::move(tc));

      if (config_.include_mutations &&
          vi % config_.mutation_seed_stride == 0) {
        MutationOptions mo;
        mo.max_mutants = config_.mutants_per_seed;
        for (auto& mutant : mutate(spec, mo)) {
          TestCase mc;
          std::snprintf(buf, sizeof buf, "abnf-%06zu", counter++);
          mc.uuid = buf;
          mc.raw = mutant.spec.to_wire();
          mc.description = "ABNF " + target.rule + " + " +
                           mutant.applied.front().describe();
          mc.origin = TestOrigin::kMutation;
          mc.category = category_for(target.position);
          out.push_back(std::move(mc));
        }
      }
    }
  }
  return out;
}

}  // namespace hdiff::core
