// The HMetrics behaviour vector (paper §III-D).
//
// "We define an n-dimension vector HMetrics for the server behavior of each
// request: ⟨uuid, status_code, host, data, ...⟩."  HMetrics is the common
// coordinate system difference analysis works in: every implementation, in
// every role and at every stage of the chain, is projected onto the same
// vector so discrepancies become component-wise comparisons.
#pragma once

#include <string>
#include <string_view>

#include "impls/verdict.h"

namespace hdiff::core {

/// Where in the Figure-6 topology an observation was made.
enum class Stage {
  kProxy,   ///< step 1: front-end processing the client's bytes
  kDirect,  ///< step 3: back-end processing the client's bytes
  kReplay,  ///< step 2: back-end processing a proxy's forwarded bytes
};

std::string_view to_string(Stage s) noexcept;

struct HMetrics {
  std::string uuid;
  std::string impl;
  Stage stage = Stage::kDirect;
  std::string via_proxy;   ///< kReplay only: the forwarding proxy

  int status_code = 0;     ///< 0 = forwarded (proxy) or blocked-incomplete
  std::string host;        ///< interpreted target host
  std::string data;        ///< interpreted request body
  std::string leftover;    ///< bytes interpreted as a subsequent request
  std::string version;     ///< interpreted HTTP version ("HTTP/1.1")
  bool forwarded = false;  ///< proxy stage: request passed downstream
  bool incomplete = false; ///< implementation blocked awaiting bytes
  bool would_cache = false;///< proxy stage: response would be cached
  std::string reason;

  /// Accepted (2xx) or successfully forwarded.
  bool ok() const noexcept {
    return forwarded || (status_code >= 200 && status_code < 300);
  }
};

HMetrics from_verdict(std::string_view uuid, const impls::ServerVerdict& v,
                      Stage stage, std::string_view via_proxy = {});
HMetrics from_verdict(std::string_view uuid, const impls::ProxyVerdict& v);

/// One-line rendering for logs and reports.
std::string to_string(const HMetrics& m);

}  // namespace hdiff::core
