#include "core/mutation.h"

#include <cctype>
#include <cstdio>

#include "http/header_util.h"

namespace hdiff::core {

const std::vector<std::string>& special_chars() {
  static const std::vector<std::string> kChars = {
      " ",      "\t",     "\x0b",   "\x0c",   "\x0d",
      "{",      "}",      "<",      ">",      "@",
      "\"",     "$",      std::string("\0", 1),  // NUL (U+0000)
      "\xc2\x80",          // U+0080
      "\xe2\x80\x8b",      // U+200B zero-width space
      "\xef\xbb\xbf",      // U+FEFF BOM
  };
  return kChars;
}

std::string_view to_string(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kRepeatHeader: return "repeat-header";
    case MutationKind::kScBeforeName: return "sc-before-name";
    case MutationKind::kScAfterName: return "sc-after-name";
    case MutationKind::kScBeforeValue: return "sc-before-value";
    case MutationKind::kNameCaseVariation: return "name-case";
    case MutationKind::kValueCaseVariation: return "value-case";
    case MutationKind::kUnicodeInValue: return "unicode-in-value";
    case MutationKind::kBareLfTerminator: return "bare-lf";
    case MutationKind::kObsFoldValue: return "obs-fold";
    case MutationKind::kVersionSwap: return "version-swap";
    case MutationKind::kVersionCase: return "version-case";
    case MutationKind::kVersionPunct: return "version-punct";
    case MutationKind::kVersionDrop: return "version-drop";
  }
  return "?";
}

const std::vector<MutationKind>& all_mutation_kinds() {
  static const std::vector<MutationKind> kKinds = {
      MutationKind::kRepeatHeader,      MutationKind::kScBeforeName,
      MutationKind::kScAfterName,       MutationKind::kScBeforeValue,
      MutationKind::kNameCaseVariation, MutationKind::kValueCaseVariation,
      MutationKind::kUnicodeInValue,    MutationKind::kBareLfTerminator,
      MutationKind::kObsFoldValue,      MutationKind::kVersionSwap,
      MutationKind::kVersionCase,       MutationKind::kVersionPunct,
      MutationKind::kVersionDrop,
  };
  return kKinds;
}

namespace {

std::string hex_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x21 && u <= 0x7E) {
      out.push_back(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", u);
      out += buf;
    }
  }
  return out;
}

std::string flip_case(std::string_view s) {
  std::string out(s);
  bool flip = true;
  for (char& c : out) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = flip ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
               : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      flip = !flip;
    }
  }
  return out;
}

/// Grammar rules a single-step mutation exercises.  The header *name* is a
/// rule in the HTTP corpus for the standard targets (Host, Content-Length,
/// Transfer-Encoding, ...), so it is included verbatim; the coverage map
/// simply drops names outside its cone.
std::vector<std::string> touched_rules(const AppliedMutation& m) {
  switch (m.kind) {
    case MutationKind::kRepeatHeader:
    case MutationKind::kScBeforeName:
    case MutationKind::kScAfterName:
    case MutationKind::kNameCaseVariation:
      return {"header-field", "field-name", m.header};
    case MutationKind::kScBeforeValue:
    case MutationKind::kValueCaseVariation:
    case MutationKind::kUnicodeInValue:
    case MutationKind::kObsFoldValue:
      return {"header-field", "field-value", m.header};
    case MutationKind::kBareLfTerminator:
      return {"header-field", m.header};
    case MutationKind::kVersionSwap:
    case MutationKind::kVersionCase:
    case MutationKind::kVersionPunct:
    case MutationKind::kVersionDrop:
      return {"HTTP-version", "request-line"};
  }
  return {};
}

}  // namespace

std::string AppliedMutation::describe() const {
  std::string out(to_string(kind));
  if (!header.empty()) out += " on " + header;
  if (!payload.empty()) out += " [" + hex_escape(payload) + "]";
  return out;
}

std::vector<Mutant> mutate(const http::RequestSpec& seed,
                           const MutationOptions& options) {
  std::vector<Mutant> out;
  auto targeted = [&](std::string_view name) {
    if (options.target_headers.empty()) return true;
    for (const auto& t : options.target_headers) {
      if (http::iequals(t, name)) return true;
    }
    return false;
  };
  auto emit = [&](http::RequestSpec spec, AppliedMutation m) {
    if (out.size() >= options.max_mutants) return;
    Mutant mutant;
    mutant.spec = std::move(spec);
    if (options.record_touched) mutant.touched = touched_rules(m);
    mutant.applied.push_back(std::move(m));
    out.push_back(std::move(mutant));
  };

  for (std::size_t i = 0; i < seed.headers.size(); ++i) {
    const http::HeaderSpec& h = seed.headers[i];
    if (!targeted(h.name)) continue;

    // Repeat the header verbatim.
    {
      http::RequestSpec spec = seed;
      spec.headers.insert(spec.headers.begin() + static_cast<std::ptrdiff_t>(i),
                          h);
      emit(std::move(spec),
           {MutationKind::kRepeatHeader, h.name, ""});
    }
    // Special characters around the name and value.
    for (const auto& sc : special_chars()) {
      if (!options.include_unicode && sc.size() > 1) continue;
      {
        http::RequestSpec spec = seed;
        spec.headers[i].name = sc + h.name;
        emit(std::move(spec), {MutationKind::kScBeforeName, h.name, sc});
      }
      {
        http::RequestSpec spec = seed;
        spec.headers[i].name = h.name + sc;
        emit(std::move(spec), {MutationKind::kScAfterName, h.name, sc});
      }
      {
        http::RequestSpec spec = seed;
        spec.headers[i].value = sc + h.value;
        emit(std::move(spec), {MutationKind::kScBeforeValue, h.name, sc});
      }
    }
    // Unicode injected *inside* the value (paper §III-D "inserting Unicode
    // characters"): the sc-* operators only reach the value's edges, so
    // splicing at the midpoint is a distinct site — "ch{U+200B}unked" parses
    // differently from "{U+200B}chunked" in implementations that trim edges.
    if (options.include_unicode && !h.value.empty()) {
      for (const auto& sc : special_chars()) {
        if (sc.size() <= 1) continue;  // multi-byte UTF-8 payloads only
        http::RequestSpec spec = seed;
        const std::size_t mid = h.value.size() / 2;
        spec.headers[i].value =
            h.value.substr(0, mid) + sc + h.value.substr(mid);
        emit(std::move(spec), {MutationKind::kUnicodeInValue, h.name, sc});
      }
    }
    // Case variation (skipped when the text has no letters to vary).
    if (std::string flipped = flip_case(h.name); flipped != h.name) {
      http::RequestSpec spec = seed;
      spec.headers[i].name = std::move(flipped);
      emit(std::move(spec), {MutationKind::kNameCaseVariation, h.name, ""});
    }
    if (std::string flipped = flip_case(h.value); flipped != h.value) {
      http::RequestSpec spec = seed;
      spec.headers[i].value = std::move(flipped);
      emit(std::move(spec), {MutationKind::kValueCaseVariation, h.name, ""});
    }
    // Bare-LF terminator on this line.
    {
      http::RequestSpec spec = seed;
      spec.headers[i].terminator = "\n";
      emit(std::move(spec), {MutationKind::kBareLfTerminator, h.name, ""});
    }
    // Fold the value onto a continuation line.
    if (!h.value.empty()) {
      http::RequestSpec spec = seed;
      spec.headers[i].value = h.value + "\r\n " + "folded";
      emit(std::move(spec), {MutationKind::kObsFoldValue, h.name, ""});
    }
  }

  // Request-line version mutations (Table II "Invalid HTTP-version" /
  // "lower/higher HTTP-version" vectors arise from exactly these).
  std::size_t slash = seed.version.find('/');
  if (slash != std::string::npos) {
    auto with_version = [&](std::string version, MutationKind kind) {
      http::RequestSpec spec = seed;
      spec.version = version;
      emit(std::move(spec), {kind, "", std::move(version)});
    };
    with_version(
        seed.version.substr(slash + 1) + "/" + seed.version.substr(0, slash),
        MutationKind::kVersionSwap);
    with_version(flip_case(seed.version), MutationKind::kVersionCase);
    std::string dashed = seed.version;
    std::size_t dot = dashed.find('.', slash);
    if (dot != std::string::npos) {
      dashed[dot] = '-';
      with_version(std::move(dashed), MutationKind::kVersionPunct);
    }
    with_version(seed.version + ".1", MutationKind::kVersionPunct);
  }
  if (!seed.version.empty()) {
    http::RequestSpec spec = seed;
    spec.version.clear();
    emit(std::move(spec), {MutationKind::kVersionDrop, "", ""});
  }
  return out;
}

}  // namespace hdiff::core
