// Mutation engine (paper §III-D, ABNF generator mutations).
//
// "To trigger possible processing discrepancies between different HTTP
// servers, HDiff also introduces common mutations on the valid requests,
// such as header repeating, inserting Unicode characters, header encoding,
// and case variation."  Mutations are applied in small doses ("several
// rounds ... so that the changes make a small impact on the format") so the
// result stays parseable by at least some implementations.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "http/serialize.h"

namespace hdiff::core {

/// The special-character set of Table II's [sc] placeholder: common
/// whitespace, grammatical characters, and Unicode (UTF-8 encoded).
const std::vector<std::string>& special_chars();

enum class MutationKind {
  kRepeatHeader,        ///< duplicate an existing header field
  kScBeforeName,        ///< "[sc]Transfer-Encoding: chunked"
  kScAfterName,         ///< "Transfer-Encoding[sc]: chunked"
  kScBeforeValue,       ///< "Content-Length: [sc]9"
  kNameCaseVariation,   ///< "hOsT", "CONTENT-LENGTH"
  kValueCaseVariation,  ///< "CHUNKED"
  kUnicodeInValue,      ///< UTF-8 bytes injected into the value
  kBareLfTerminator,    ///< header line terminated with "\n" only
  kObsFoldValue,        ///< value split across a folded continuation
  kVersionSwap,         ///< "HTTP/1.1" -> "1.1/HTTP"
  kVersionCase,         ///< "HTTP/1.1" -> "hTTP/1.1"
  kVersionPunct,        ///< "HTTP/1.1" -> "HTTP/1-1", "HTTP/1.1.1"
  kVersionDrop,         ///< remove the version token (0.9-style line)
};

std::string_view to_string(MutationKind k) noexcept;

/// Every MutationKind, in declaration order (analysis::MutationCoverage
/// iterates the operator set to find kinds `mutate()` never emits).
const std::vector<MutationKind>& all_mutation_kinds();

/// One applied mutation, for labelling test cases.
struct AppliedMutation {
  MutationKind kind;
  std::string header;    ///< affected header name ("" = request line)
  std::string payload;   ///< injected bytes, if any
  std::string describe() const;
};

/// A mutated request plus its provenance.
struct Mutant {
  http::RequestSpec spec;
  std::vector<AppliedMutation> applied;
  /// Grammar rule names this mutant exercises (filled only when
  /// MutationOptions::record_touched; the campaign maps them onto coverage
  /// production ids).  Derived from the mutation kind + affected header, so
  /// it costs a few small strings per mutant and nothing when disabled.
  std::vector<std::string> touched;
};

struct MutationOptions {
  /// Headers eligible for mutation (empty = all).
  std::vector<std::string> target_headers = {"Host", "Content-Length",
                                             "Transfer-Encoding"};
  std::size_t max_mutants = 64;  ///< cap per seed
  bool include_unicode = true;
  /// Record Mutant::touched (off on the hot path unless coverage is on).
  bool record_touched = false;
};

/// Produce single-step mutants of a seed request (one mutation each; the
/// caller can feed mutants back in for additional rounds).
std::vector<Mutant> mutate(const http::RequestSpec& seed,
                           const MutationOptions& options = {});

}  // namespace hdiff::core
