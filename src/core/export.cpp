#include "core/export.h"

#include <cctype>

#include "report/json.h"

namespace hdiff::core {

using report::JsonWriter;

std::string hex_encode(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    unsigned char u = static_cast<unsigned char>(c);
    out.push_back(kHex[u >> 4]);
    out.push_back(kHex[u & 0xF]);
  }
  return out;
}

bool hex_decode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0 || !out) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

namespace {

void write_test_case(JsonWriter& w, const TestCase& tc) {
  w.begin_object();
  w.key("uuid").value(tc.uuid);
  w.key("raw_hex").value(hex_encode(tc.raw));
  w.key("description").value(tc.description);
  w.key("vector_label").value(tc.vector_label);
  w.key("origin").value(to_string(tc.origin));
  w.key("category").value(to_string(tc.category));
  if (tc.assertion) {
    const Assertion& a = *tc.assertion;
    w.key("assert_role").value(text::to_string(a.role));
    w.key("assert_status")
        .value(a.expect_status ? std::to_string(*a.expect_status) : "");
    w.key("assert_reject").value(a.expect_reject ? "1" : "0");
    w.key("assert_not_forward").value(a.expect_not_forward ? "1" : "0");
    w.key("assert_sr").value(a.sr_id);
  }
  w.end_object();
}

std::optional<TestOrigin> origin_from_string(std::string_view s) {
  if (s == "sr-translator") return TestOrigin::kSrTranslator;
  if (s == "abnf-generator") return TestOrigin::kAbnfGenerator;
  if (s == "mutation") return TestOrigin::kMutation;
  if (s == "manual") return TestOrigin::kManual;
  return std::nullopt;
}

std::optional<AttackClass> category_from_string(std::string_view s) {
  if (s == "HRS") return AttackClass::kHrs;
  if (s == "HoT") return AttackClass::kHot;
  if (s == "CPDoS") return AttackClass::kCpdos;
  if (s == "generic") return AttackClass::kGeneric;
  return std::nullopt;
}

/// Minimal scanner for the flat JSON this module emits: an object with a
/// "cases" array of objects whose values are strings.  Tolerates arbitrary
/// whitespace; rejects anything structurally unexpected.
class FlatScanner {
 public:
  explicit FlatScanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  /// Skip a scalar value: a string or a bare number/true/false/null.
  bool skip_scalar() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '"') {
      std::string discard;
      return read_string(&discard);
    }
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool read_string(std::string* out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // This exporter only emits \u00XX for control bytes.
            if (value > 0xFF) return false;
            out->push_back(static_cast<char>(value));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string export_test_cases_json(const std::vector<TestCase>& cases) {
  JsonWriter w;
  w.begin_object();
  w.key("format").value("hdiff-test-corpus-v1");
  w.key("count").value(cases.size());
  w.key("cases").begin_array();
  for (const auto& tc : cases) write_test_case(w, tc);
  w.end_array();
  w.end_object();
  return w.str();
}

bool import_test_cases_json(std::string_view json,
                            std::vector<TestCase>* out) {
  if (!out) return false;
  std::vector<TestCase> cases;
  FlatScanner scan(json);
  if (!scan.consume('{')) return false;

  // Walk the top-level object until the "cases" array.
  bool in_cases = false;
  std::string key;
  while (true) {
    if (!scan.read_string(&key)) return false;
    if (!scan.consume(':')) return false;
    if (key == "cases") {
      in_cases = true;
      break;
    }
    if (!scan.skip_scalar()) return false;
    if (!scan.consume(',')) return false;
  }
  if (!in_cases || !scan.consume('[')) return false;

  if (!scan.peek_is(']')) {
    do {
      if (!scan.consume('{')) return false;
      TestCase tc;
      std::string raw_hex;
      bool has_assertion = false;
      Assertion assertion;
      do {
        std::string field, field_value;
        if (!scan.read_string(&field)) return false;
        if (!scan.consume(':')) return false;
        if (!scan.read_string(&field_value)) return false;
        if (field == "uuid") {
          tc.uuid = field_value;
        } else if (field == "raw_hex") {
          raw_hex = field_value;
        } else if (field == "description") {
          tc.description = field_value;
        } else if (field == "vector_label") {
          tc.vector_label = field_value;
        } else if (field == "origin") {
          auto origin = origin_from_string(field_value);
          if (!origin) return false;
          tc.origin = *origin;
        } else if (field == "category") {
          auto category = category_from_string(field_value);
          if (!category) return false;
          tc.category = *category;
        } else if (field == "assert_role") {
          has_assertion = true;
          assertion.role = text::role_from_word(field_value);
        } else if (field == "assert_status") {
          has_assertion = true;
          if (!field_value.empty()) {
            assertion.expect_status = std::stoi(field_value);
          }
        } else if (field == "assert_reject") {
          has_assertion = true;
          assertion.expect_reject = field_value == "1";
        } else if (field == "assert_not_forward") {
          has_assertion = true;
          assertion.expect_not_forward = field_value == "1";
        } else if (field == "assert_sr") {
          has_assertion = true;
          assertion.sr_id = field_value;
        }
      } while (scan.consume(','));
      if (!scan.consume('}')) return false;
      if (!hex_decode(raw_hex, &tc.raw)) return false;
      if (has_assertion) tc.assertion = std::move(assertion);
      cases.push_back(std::move(tc));
    } while (scan.consume(','));
  }
  if (!scan.consume(']')) return false;

  *out = std::move(cases);
  return true;
}

std::string export_json(const PipelineResult& result, ExportOptions options) {
  JsonWriter w;
  w.begin_object();
  w.key("format").value("hdiff-findings-v1");

  w.key("analysis").begin_object();
  w.key("corpus_words").value(result.analysis.total_words);
  w.key("corpus_sentences").value(result.analysis.total_sentences);
  w.key("sr_count").value(result.analysis.srs.size());
  w.key("converted_sr_count").value(result.analysis.converted_sr_count);
  w.key("abnf_rule_count").value(result.analysis.grammar.size());
  w.end_object();

  w.key("generation").begin_object();
  w.key("sr_cases").value(result.sr_case_count);
  w.key("abnf_cases").value(result.abnf_case_count);
  w.key("executed_cases").value(result.executed_cases.size());
  w.end_object();

  w.key("matrix").begin_object();
  for (const auto& [impl, row] : result.matrix.by_impl) {
    w.key(impl).begin_object();
    w.key("hrs").value(row.hrs);
    w.key("hot").value(row.hot);
    w.key("cpdos").value(row.cpdos);
    w.end_object();
  }
  w.end_object();

  auto write_pairs = [&](const char* name, const std::set<std::string>& set) {
    w.key(name).begin_array();
    for (const auto& pair : set) w.value(pair);
    w.end_array();
  };
  write_pairs("hrs_pairs", result.matrix.hrs_pairs);
  write_pairs("hot_pairs", result.matrix.hot_pairs);
  write_pairs("cpdos_pairs", result.matrix.cpdos_pairs);

  w.key("violations").begin_array();
  for (const auto& v : result.findings.violations) {
    w.begin_object();
    w.key("impl").value(v.impl);
    w.key("sr_id").value(v.sr_id);
    w.key("uuid").value(v.uuid);
    w.key("category").value(to_string(v.category));
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();

  if (options.include_pair_details) {
    w.key("pair_findings").begin_array();
    for (const auto& p : result.findings.pairs) {
      w.begin_object();
      w.key("front").value(p.front);
      w.key("back").value(p.back);
      w.key("attack").value(to_string(p.attack));
      w.key("uuid").value(p.uuid);
      w.key("detail").value(p.detail);
      w.end_object();
    }
    w.end_array();
  }

  w.key("discrepancies").begin_object();
  w.key("status").value(result.findings.discrepancies.status_disagreements);
  w.key("host").value(result.findings.discrepancies.host_disagreements);
  w.key("body").value(result.findings.discrepancies.body_disagreements);
  w.key("inputs").value(
      result.findings.discrepancies.inputs_with_discrepancy);
  w.end_object();

  // Harness-fault degradation accounting: consumers of a findings file must
  // be able to see how much coverage was lost to quarantine (all zero on a
  // healthy run).
  w.key("degradation").begin_object();
  w.key("faulted_attempts").value(result.exec_stats.faulted_attempts);
  w.key("retry_attempts").value(result.exec_stats.retry_attempts);
  w.key("recovered_cases").value(result.exec_stats.recovered_cases);
  w.key("quarantined_cases").value(result.exec_stats.quarantined_cases);
  w.key("quarantined").begin_array();
  for (const auto& q : result.exec_stats.quarantined) {
    w.begin_object();
    w.key("uuid").value(q.uuid);
    w.key("error").value(net::to_string(q.error));
    w.key("attempts").value(q.attempts);
    w.key("detail").value(q.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // Throughput accounting for the differential stage (mirrors
  // ExecutorStats); cache hit rates and bytes quantify how much work the
  // memo layers absorbed.
  w.key("metrics").begin_object();
  w.key("jobs").value(result.exec_stats.jobs);
  w.key("cases").value(result.exec_stats.cases);
  w.key("memo_hits").value(result.exec_stats.memo_hits);
  w.key("memo_misses").value(result.exec_stats.memo_misses);
  w.key("memo_hit_rate").value(result.exec_stats.memo_hit_rate());
  w.key("memo_bytes").value(result.exec_stats.memo_bytes);
  w.key("verdict_hits").value(result.exec_stats.verdict_hits);
  w.key("verdict_misses").value(result.exec_stats.verdict_misses);
  w.key("verdict_hit_rate").value(result.exec_stats.verdict_hit_rate());
  w.key("verdict_bytes").value(result.exec_stats.verdict_bytes);
  w.key("echo_records").value(result.exec_stats.echo_records);
  w.key("echo_dropped").value(result.exec_stats.echo_dropped);
  w.end_object();

  // Per-stage wall clock in execution order (microseconds).
  w.key("stage_timings").begin_array();
  for (const auto& st : result.stage_timings) {
    w.begin_object();
    w.key("stage").value(st.stage);
    w.key("micros").value(st.micros);
    w.end_object();
  }
  w.end_array();

  // Static-analysis verdicts over the run's grammar and rule base
  // (pre-rendered by the analysis layer; see ExportOptions::lint_json).
  if (!options.lint_json.empty()) {
    w.key("lint").raw(options.lint_json);
  }

  if (options.include_test_cases) {
    w.key("cases").begin_array();
    for (const auto& tc : result.executed_cases) write_test_case(w, tc);
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace hdiff::core
