#include "core/hmetrics.h"

#include "http/message.h"

namespace hdiff::core {

std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kProxy: return "proxy";
    case Stage::kDirect: return "direct";
    case Stage::kReplay: return "replay";
  }
  return "direct";
}

HMetrics from_verdict(std::string_view uuid, const impls::ServerVerdict& v,
                      Stage stage, std::string_view via_proxy) {
  HMetrics m;
  m.uuid.assign(uuid);
  m.impl = v.impl;
  m.stage = stage;
  m.via_proxy.assign(via_proxy);
  m.status_code = v.status;
  m.host = v.host;
  m.data = v.body;
  m.leftover = v.leftover;
  m.version = http::to_string(v.version);
  m.incomplete = v.incomplete;
  m.reason = v.reason;
  return m;
}

HMetrics from_verdict(std::string_view uuid, const impls::ProxyVerdict& v) {
  HMetrics m;
  m.uuid.assign(uuid);
  m.impl = v.impl;
  m.stage = Stage::kProxy;
  m.status_code = v.status;
  m.host = v.host;
  m.data = v.body;
  m.leftover = v.leftover;
  m.forwarded = v.forwarded();
  m.incomplete = v.incomplete;
  m.would_cache = v.would_cache;
  m.reason = v.reason;
  return m;
}

std::string to_string(const HMetrics& m) {
  std::string out = "⟨" + m.uuid + ", " + m.impl + "/" +
                    std::string(to_string(m.stage));
  if (!m.via_proxy.empty()) out += "(" + m.via_proxy + ")";
  out += ", status=" + std::to_string(m.status_code);
  out += ", host=" + (m.host.empty() ? "-" : m.host);
  out += ", |data|=" + std::to_string(m.data.size());
  out += ", |leftover|=" + std::to_string(m.leftover.size());
  if (m.forwarded) out += ", forwarded";
  if (m.incomplete) out += ", incomplete";
  if (m.would_cache) out += ", caches";
  out += "⟩";
  return out;
}

}  // namespace hdiff::core
