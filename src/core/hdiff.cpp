#include "core/hdiff.h"

#include "abnf/parser.h"
#include "core/probes.h"
#include "corpus/registry.h"
#include "impls/products.h"

namespace hdiff::core {

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {}

PipelineResult Pipeline::run() const {
  return run(impls::make_all_implementations());
}

PipelineResult Pipeline::run(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet)
    const {
  PipelineResult result;

  const obs::Observability& ob = config_.obs;
  const obs::Clock& clock = ob.effective_clock();
  // Times one stage body: a StageTiming row always, plus a span and a
  // `hdiff_stage_<name>_micros` gauge when obs is enabled.
  const auto stage = [&](std::string_view name, auto&& body) {
    obs::Span span(ob.trace, name, "pipeline");
    const std::uint64_t s0 = clock.now_us();
    body();
    const std::uint64_t micros = clock.now_us() - s0;
    result.stage_timings.push_back(StageTiming{std::string(name), micros});
    if (ob.metrics) {
      std::string metric = "hdiff_stage_";
      for (char c : name) metric += c == '-' ? '_' : c;
      metric += "_micros";
      ob.metrics->gauge(metric).set(static_cast<std::int64_t>(micros));
    }
  };

  // ---- Documentation Analyzer ---------------------------------------------
  stage("analyze", [&] {
    DocumentationAnalyzer analyzer(config_.analyzer);
    // Manual input #4: custom ABNF for rules left undefined after adaptation.
    analyzer.set_custom_abnf("URI-reference",
                             abnf::parse_elements("absolute-URI"));
    analyzer.set_custom_abnf("HTTP-date",
                             abnf::parse_elements("token"));
    analyzer.set_custom_abnf("quoted-string",
                             abnf::parse_elements("DQUOTE *VCHAR DQUOTE"));
    std::vector<std::string_view> docs = config_.documents.empty()
                                             ? corpus::http_core_documents()
                                             : config_.documents;
    result.analysis = analyzer.analyze(docs);
  });

  // ---- test-case generation -------------------------------------------------
  std::vector<TestCase> sr_cases;
  stage("translate-srs", [&] {
    SrTranslator translator(result.analysis.grammar, config_.translator);
    sr_cases = translator.translate_all(result.analysis.srs);
    result.sr_case_count = sr_cases.size();
  });

  std::vector<TestCase> abnf_cases;
  stage("generate-abnf", [&] {
    AbnfTestGen abnf_gen(result.analysis.grammar, config_.abnf_gen);
    abnf_cases = abnf_gen.generate();
    result.abnf_case_count = abnf_cases.size();
  });

  stage("assemble-cases", [&] {
    if (config_.include_probes) {
      result.executed_cases = verification_probes();
    }
    result.executed_cases.insert(result.executed_cases.end(),
                                 std::make_move_iterator(sr_cases.begin()),
                                 std::make_move_iterator(sr_cases.end()));
    const std::size_t budget = config_.abnf_run_budget == 0
                                   ? abnf_cases.size()
                                   : config_.abnf_run_budget;
    for (std::size_t i = 0; i < abnf_cases.size() && i < budget; ++i) {
      result.executed_cases.push_back(std::move(abnf_cases[i]));
    }
  });

  // ---- differential testing ---------------------------------------------------
  stage("differential", [&] {
    net::Chain chain = net::Chain::from_fleet(fleet);
    ExecutorConfig exec_config = config_.executor;
    if (!exec_config.obs.enabled()) exec_config.obs = config_.obs;
    ParallelExecutor executor(exec_config);
    result.findings =
        executor.run(chain, result.executed_cases, &result.exec_stats);
  });
  stage("build-matrix", [&] {
    result.matrix = build_matrix(result.findings, result.executed_cases);
  });
  return result;
}

}  // namespace hdiff::core
