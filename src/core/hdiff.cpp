#include "core/hdiff.h"

#include "abnf/parser.h"
#include "core/probes.h"
#include "corpus/registry.h"
#include "impls/products.h"

namespace hdiff::core {

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {}

PipelineResult Pipeline::run() const {
  return run(impls::make_all_implementations());
}

PipelineResult Pipeline::run(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet)
    const {
  PipelineResult result;

  // ---- Documentation Analyzer ---------------------------------------------
  DocumentationAnalyzer analyzer(config_.analyzer);
  // Manual input #4: custom ABNF for rules left undefined after adaptation.
  analyzer.set_custom_abnf("URI-reference",
                           abnf::parse_elements("absolute-URI"));
  analyzer.set_custom_abnf("HTTP-date",
                           abnf::parse_elements("token"));
  analyzer.set_custom_abnf("quoted-string",
                           abnf::parse_elements("DQUOTE *VCHAR DQUOTE"));
  std::vector<std::string_view> docs = config_.documents.empty()
                                           ? corpus::http_core_documents()
                                           : config_.documents;
  result.analysis = analyzer.analyze(docs);

  // ---- test-case generation -------------------------------------------------
  SrTranslator translator(result.analysis.grammar, config_.translator);
  std::vector<TestCase> sr_cases = translator.translate_all(result.analysis.srs);
  result.sr_case_count = sr_cases.size();

  AbnfTestGen abnf_gen(result.analysis.grammar, config_.abnf_gen);
  std::vector<TestCase> abnf_cases = abnf_gen.generate();
  result.abnf_case_count = abnf_cases.size();

  if (config_.include_probes) {
    result.executed_cases = verification_probes();
  }
  result.executed_cases.insert(result.executed_cases.end(),
                               std::make_move_iterator(sr_cases.begin()),
                               std::make_move_iterator(sr_cases.end()));
  const std::size_t budget = config_.abnf_run_budget == 0
                                 ? abnf_cases.size()
                                 : config_.abnf_run_budget;
  for (std::size_t i = 0; i < abnf_cases.size() && i < budget; ++i) {
    result.executed_cases.push_back(std::move(abnf_cases[i]));
  }

  // ---- differential testing ---------------------------------------------------
  net::Chain chain = net::Chain::from_fleet(fleet);
  ParallelExecutor executor(config_.executor);
  result.findings = executor.run(chain, result.executed_cases, &result.exec_stats);
  result.matrix = build_matrix(result.findings, result.executed_cases);
  return result;
}

}  // namespace hdiff::core
