#include "core/probes.h"

#include <cstdio>

#include "http/serialize.h"

namespace hdiff::core {

namespace {

using http::HeaderSpec;
using http::RequestSpec;

Assertion framing_assertion() {
  Assertion a;
  a.role = text::Role::kRecipient;
  a.expect_reject = true;
  a.expect_not_forward = true;
  a.sr_id = "manual-framing";
  return a;
}

struct Builder {
  std::vector<TestCase> cases;
  std::size_t counter = 0;

  void probe(RequestSpec spec, std::string description,
             std::string vector_label, AttackClass category,
             std::optional<Assertion> assertion = std::nullopt) {
    TestCase tc;
    char buf[24];
    std::snprintf(buf, sizeof buf, "probe-%03zu", counter++);
    tc.uuid = buf;
    tc.raw = spec.to_wire();
    tc.description = std::move(description);
    tc.vector_label = std::move(vector_label);
    tc.origin = TestOrigin::kManual;
    tc.category = category;
    tc.assertion = std::move(assertion);
    cases.push_back(std::move(tc));
  }
};

RequestSpec get_h1() { return http::make_get("h1.com", "/?a=1"); }

RequestSpec chunked_post(std::string_view te, std::string_view body) {
  RequestSpec s;
  s.method = "POST";
  s.add("Host", "h1.com");
  s.add("Transfer-Encoding", te);
  s.body.assign(body);
  return s;
}

}  // namespace

std::vector<TestCase> verification_probes() {
  Builder b;
  const std::string kChunkEnd = "0\r\n\r\n";
  const std::string kSmuggled =
      "GET /evil HTTP/1.1\r\nHost: h1.com\r\n\r\n";

  // ---- Request-Line: invalid HTTP-version (CPDoS) --------------------------
  for (std::string_view v : {"1.1/HTTP", "HTTP/3-1", "hTTP/1.1"}) {
    RequestSpec s = get_h1();
    s.version.assign(v);
    b.probe(std::move(s), "invalid HTTP-version " + std::string(v),
            "Invalid HTTP-version", AttackClass::kCpdos);
  }

  // ---- Request-Line: lower/higher HTTP-version (HRS, CPDoS) ----------------
  {
    RequestSpec s = get_h1();
    s.version.clear();  // HTTP/0.9 simple request, yet with a Host header
    b.probe(std::move(s), "HTTP/0.9 request line with header fields",
            "lower/higher HTTP-version", AttackClass::kCpdos);
  }
  {
    RequestSpec s = chunked_post("chunked", "3\r\nabc\r\n" + kChunkEnd);
    s.version = "HTTP/1.0";
    b.probe(std::move(s), "HTTP/1.0 with Transfer-Encoding: chunked",
            "lower/higher HTTP-version", AttackClass::kHrs);
  }
  {
    RequestSpec s = get_h1();
    s.version = "HTTP/2.0";
    b.probe(std::move(s), "HTTP/2.0 version token on a 1.x connection",
            "lower/higher HTTP-version", AttackClass::kCpdos);
  }

  // ---- Request-Line: bad absolute-URI vs Host (HoT) ------------------------
  {
    RequestSpec s = get_h1();
    s.target = "test://h2.com/?a=1";
    b.probe(std::move(s), "non-http scheme absolute-URI vs Host header",
            "Bad absolute-URI vs Host", AttackClass::kHot);
  }
  {
    RequestSpec s = get_h1();
    s.target = "http://h1@h2.com/";
    b.probe(std::move(s), "userinfo absolute-URI h1@h2.com",
            "Bad absolute-URI vs Host", AttackClass::kHot);
  }
  {
    RequestSpec s;
    s.target = "http://h2.com/?a=1";  // no Host header at all
    b.probe(std::move(s), "absolute-URI without Host header",
            "Bad absolute-URI vs Host", AttackClass::kHot);
  }

  // ---- Request-Line: fat HEAD/GET (HRS, CPDoS) ------------------------------
  {
    RequestSpec s = get_h1();
    s.add("Content-Length", "5");
    s.body = "AAAAA";
    b.probe(std::move(s), "GET with Content-Length body",
            "Fat HEAD/GET request", AttackClass::kHrs);
  }
  {
    RequestSpec s = get_h1();
    s.method = "HEAD";
    s.add("Content-Length", "5");
    s.body = "AAAAA";
    b.probe(std::move(s), "HEAD with Content-Length body",
            "Fat HEAD/GET request", AttackClass::kHrs);
  }

  // ---- Header-field: invalid CL/TE (HRS) ------------------------------------
  {
    RequestSpec s = http::make_post("h1.com", "/", "AAAAAA");
    s.set("Content-Length", "+6");
    b.probe(std::move(s), "Content-Length: +6", "Invalid CL/TE header",
            AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = http::make_post("h1.com", "/", "AAAAAA");
    s.set("Content-Length", "6,9");
    b.probe(std::move(s), "Content-Length: 6,9", "Invalid CL/TE header",
            AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = http::make_post("h1.com", "/", "AAAAAAAAAA");
    s.headers[1].name = "Content-Length ";  // "Content-Length : 10"
    b.probe(std::move(s), "whitespace before colon on Content-Length",
            "Invalid CL/TE header", AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = chunked_post("\x0b" "chunked", "3\r\nabc\r\n" + kChunkEnd);
    b.probe(std::move(s), "Transfer-Encoding: \\x0bchunked",
            "Invalid CL/TE header", AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = chunked_post("chunked", "3\r\nabc\r\n" + kChunkEnd);
    s.headers[1].name = "\x0bTransfer-Encoding";
    b.probe(std::move(s), "[sc]Transfer-Encoding: chunked",
            "Invalid CL/TE header", AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = chunked_post("chunked", "3\r\nabc\r\n" + kChunkEnd);
    s.headers[1].name = "Transfer-Encoding\x0b";
    b.probe(std::move(s), "Transfer-Encoding[sc]: chunked",
            "Invalid CL/TE header", AttackClass::kHrs, framing_assertion());
  }

  // ---- Header-field: multiple CL/TE (HRS) -------------------------------------
  {
    RequestSpec s = http::make_post("h1.com", "/", "AAAAAAAAAA");
    s.add("Content-Length", "0xff");
    b.probe(std::move(s), "Content-Length: 10 + Content-Length: 0xff",
            "Multiple CL/TE headers", AttackClass::kHrs, framing_assertion());
  }
  {
    // CL spans the chunked terminator plus a smuggled request; TE carries a
    // control byte so only control-stripping recipients honour chunked.
    std::string body = kChunkEnd + kSmuggled;
    RequestSpec s = chunked_post("chunked", body);
    s.headers[1].name = "Transfer-Encoding\x0b";
    s.add("Content-Length", std::to_string(body.size()));
    b.probe(std::move(s), "Content-Length + mangled Transfer-Encoding",
            "Multiple CL/TE headers", AttackClass::kHrs, framing_assertion());
  }
  {
    std::string body = kChunkEnd + kSmuggled;
    RequestSpec s = chunked_post("chunked", body);
    s.add("Content-Length", std::to_string(body.size()));
    b.probe(std::move(s), "Content-Length together with Transfer-Encoding",
            "Multiple CL/TE headers", AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s = chunked_post("chunked", "3\r\nabc\r\n" + kChunkEnd);
    s.add("Transfer-Encoding", "chunked");
    b.probe(std::move(s), "duplicate Transfer-Encoding headers",
            "Multiple CL/TE headers", AttackClass::kHrs, framing_assertion());
  }

  // ---- Header-field: invalid Host (HoT, CPDoS) ---------------------------------
  for (std::string_view host :
       {"h1.com@h2.com", "h1.com, h2.com", "h1.com/.//test?"}) {
    RequestSpec s = get_h1();
    s.set("Host", host);
    b.probe(std::move(s), "Host: " + std::string(host), "Invalid Host header",
            AttackClass::kHot);
  }
  {
    RequestSpec s = get_h1();
    s.headers[0].separator = ":\x0b ";  // "Host:[sc] h1.com"
    b.probe(std::move(s), "Host:[sc] h1.com", "Invalid Host header",
            AttackClass::kHot);
  }

  // ---- Header-field: multiple Host (HoT) -----------------------------------------
  {
    RequestSpec s = get_h1();
    s.headers.insert(s.headers.begin(), HeaderSpec{"\x0bHost", "h0.com"});
    b.probe(std::move(s), "[sc]Host + Host", "Multiple Host headers",
            AttackClass::kHot);
  }
  {
    RequestSpec s = get_h1();
    s.add("Host", "h2.com");
    b.probe(std::move(s), "two Host headers", "Multiple Host headers",
            AttackClass::kHot);
  }

  // ---- Header-field: hop-by-hop (CPDoS) ---------------------------------------------
  {
    RequestSpec s = get_h1();
    s.add("Connection", "close, Host");
    b.probe(std::move(s), "Connection: close, Host", "Hop-by-Hop headers",
            AttackClass::kCpdos);
  }
  {
    RequestSpec s = get_h1();
    s.add("Cookie", "session=1");
    s.add("Connection", "Cookie");
    b.probe(std::move(s), "Connection: Cookie", "Hop-by-Hop headers",
            AttackClass::kCpdos);
  }

  // ---- Header-field: Expect (HRS, CPDoS) -----------------------------------------------
  {
    RequestSpec s = get_h1();
    s.add("Expect", "100-continuce");
    b.probe(std::move(s), "Expect: 100-continuce (typo)", "Expect header",
            AttackClass::kCpdos);
  }
  {
    RequestSpec s = get_h1();
    s.add("Expect", "100-continue");
    b.probe(std::move(s), "Expect: 100-continue on bodyless GET",
            "Expect header", AttackClass::kCpdos);
  }

  // ---- Header-field: obs-fold Host (HoT) ---------------------------------------------------
  {
    RequestSpec s = get_h1();
    s.headers[0].value = "h1.com\t\nh2.com";
    b.probe(std::move(s), "Host: h1.com\\t\\nh2.com", "Obs-fold header",
            AttackClass::kHot);
  }

  // ---- Header-field: obsoleted value (HRS, CPDoS) -------------------------------------------
  {
    RequestSpec s =
        chunked_post("chunked, identity", "3\r\nabc\r\n" + kChunkEnd);
    b.probe(std::move(s), "Transfer-Encoding: chunked, identity",
            "Obsoleted header or value", AttackClass::kHrs,
            framing_assertion());
  }

  // ---- Message-body: bad chunk-size (HRS) ----------------------------------------------------
  {
    RequestSpec s = chunked_post("chunked",
                                 "100000000a\r\nabc\r\n" + kChunkEnd);
    b.probe(std::move(s), "chunk-size wider than 32 bits",
            "Bad chunk-size value", AttackClass::kHrs, framing_assertion());
  }
  {
    RequestSpec s =
        chunked_post("chunked", "0xfgh\r\nabc\r\n9\r\n" + kChunkEnd);
    b.probe(std::move(s), "non-hex chunk-size", "Bad chunk-size value",
            AttackClass::kHrs, framing_assertion());
  }

  // ---- Message-body: NUL in chunk-data (HRS) --------------------------------------------------
  {
    std::string body = "3\r\na";
    body.push_back('\0');
    body += "c\r\n" + kChunkEnd;
    RequestSpec s = chunked_post("chunked", body);
    b.probe(std::move(s), "NUL byte inside chunk-data", "NULL in chunk-data",
            AttackClass::kHrs);
  }

  return b.cases;
}

}  // namespace hdiff::core
