#include "core/analyzer.h"

#include <cctype>
#include <cstdio>

#include "abnf/parser.h"
#include "corpus/registry.h"
#include "text/clause.h"
#include "text/sentence.h"

namespace hdiff::core {

DocumentationAnalyzer::DocumentationAnalyzer(AnalyzerConfig config)
    : config_(config) {}

void DocumentationAnalyzer::set_templates(
    std::vector<text::Hypothesis> templates) {
  templates_ = std::move(templates);
}

void DocumentationAnalyzer::set_custom_abnf(std::string_view rule_name,
                                            abnf::NodePtr definition) {
  custom_abnf_.emplace_back(std::string(rule_name), std::move(definition));
}

std::set<std::string> make_field_dictionary(const abnf::Grammar& grammar) {
  std::set<std::string> out;
  for (const auto& [key, rule] : grammar.rules()) {
    // Header fields are conventionally spelled with a leading capital in
    // their defining rule ("Host", "Content-Length", "Transfer-Encoding").
    if (!rule.name.empty() &&
        std::isupper(static_cast<unsigned char>(rule.name[0])) &&
        rule.name.size() > 2) {
      out.insert(key);  // normalized (lower-case) name
    }
  }
  // Core message elements referenced by framing requirements.
  out.insert("chunk-size");
  out.insert("chunk-data");
  out.insert("transfer-coding");
  out.insert("request-line");
  out.insert("request-target");
  out.insert("http-version");
  out.insert("message-body");
  out.insert("field-name");
  out.insert("field-value");
  out.insert("header-field");
  return out;
}

std::vector<text::Hypothesis> make_default_sr_templates(
    const std::set<std::string>& fields) {
  using text::Action;
  using text::Hypothesis;
  using text::Role;
  std::vector<Hypothesis> out;

  // ---- message descriptions: "[field] is [modifier]" ----------------------
  static constexpr std::string_view kModifiers[] = {
      "invalid", "multiple", "missing", "whitespace", "obsolete", "empty",
  };
  for (const auto& field : fields) {
    for (auto mod : kModifiers) {
      Hypothesis h;
      h.field = field;
      h.modifier = std::string(mod);
      h.label = "msg:" + field + ":" + std::string(mod);
      out.push_back(std::move(h));
    }
  }

  // ---- role actions: "[role] [action] ([status])" --------------------------
  static constexpr Role kRoles[] = {
      Role::kClient, Role::kServer, Role::kProxy,        Role::kSender,
      Role::kRecipient, Role::kIntermediary, Role::kCache, Role::kGateway,
      Role::kUserAgent, Role::kOrigin,
  };
  static constexpr Action kActions[] = {
      Action::kReject, Action::kRespond, Action::kForward, Action::kGenerate,
      Action::kIgnore, Action::kClose,   Action::kReplace, Action::kTreat,
  };
  static constexpr int kStatuses[] = {200, 400, 411, 417, 431, 501, 505};

  for (Role role : kRoles) {
    for (Action action : kActions) {
      for (bool negated : {false, true}) {
        Hypothesis h;
        h.role = role;
        h.action = action;
        h.negated = negated;
        h.label = std::string("act:") + std::string(text::to_string(role)) +
                  ":" + (negated ? "not-" : "") +
                  std::string(text::to_string(action));
        out.push_back(std::move(h));
      }
      if (action == Action::kRespond) {
        for (int status : kStatuses) {
          Hypothesis h;
          h.role = role;
          h.action = action;
          h.status_code = status;
          h.label = std::string("act:") + std::string(text::to_string(role)) +
                    ":respond-" + std::to_string(status);
          out.push_back(std::move(h));
        }
      }
    }
  }
  return out;
}

AnalyzerResult DocumentationAnalyzer::analyze(
    const std::vector<std::string_view>& doc_names) const {
  AnalyzerResult result;

  // ---- ABNF extraction over *all* registered documents --------------------
  // (Prose references can pull in documents outside the analysis set, so the
  // adaptor needs every grammar registered up front.)
  abnf::Adaptor adaptor;
  for (const auto& doc : corpus::all_documents()) {
    std::string cleaned = abnf::clean_rfc_text(doc.text);
    abnf::ExtractionStats stats;
    abnf::Grammar g = abnf::extract_abnf(cleaned, doc.name, &stats);
    bool in_analysis_set = false;
    for (auto name : doc_names) {
      if (name == doc.name) in_analysis_set = true;
    }
    if (in_analysis_set) {
      result.abnf_stats.lines_scanned += stats.lines_scanned;
      result.abnf_stats.candidate_chunks += stats.candidate_chunks;
      result.abnf_stats.parsed_rules += stats.parsed_rules;
      result.abnf_stats.parse_failures += stats.parse_failures;
      result.abnf_stats.prose_val_rules += stats.prose_val_rules;
    }
    adaptor.register_document(std::string(doc.name), std::move(g));
  }
  for (const auto& [name, def] : custom_abnf_) {
    adaptor.set_custom_rule(name, def);
  }
  // The core ABNF rules (RFC 5234) underpin every HTTP grammar.
  std::vector<std::string> order{"rfc5234"};
  for (auto name : doc_names) order.emplace_back(name);
  result.grammar = adaptor.adapt(order, &result.adapt_report);
  result.field_dictionary = make_field_dictionary(result.grammar);

  // ---- SR mining -----------------------------------------------------------
  std::vector<text::Hypothesis> templates =
      templates_.empty() ? make_default_sr_templates(result.field_dictionary)
                         : templates_;
  text::SentimentClassifier sentiment(config_.sentiment_threshold);
  text::EntailmentEngine entailment(config_.entailment_min_modal);

  for (auto name : doc_names) {
    const corpus::Document* doc = corpus::find_document(name);
    if (!doc) continue;
    std::string cleaned = abnf::clean_rfc_text(doc->text);
    result.total_words += text::count_words(cleaned);
    std::vector<text::Sentence> sentences =
        text::split_sentences(cleaned, config_.min_sentence_words);
    result.total_sentences += sentences.size();

    std::size_t sr_index = 0;
    for (std::size_t i = 0; i < sentences.size(); ++i) {
      if (text::looks_like_grammar(sentences[i].text)) continue;
      text::SentimentResult score = sentiment.score(sentences[i].text);
      if (score.strength < config_.sentiment_threshold) continue;

      SrRecord record;
      char idbuf[16];
      std::snprintf(idbuf, sizeof idbuf, "-sr-%03zu", sr_index++);
      record.id = std::string(name) + idbuf;
      record.doc.assign(name);
      record.sentence =
          text::merge_referred_context(sentences, i, config_.anaphora_window);
      record.sentiment = score.strength;
      record.polarity = score.polarity;

      // Clause-wise Text2Rule conversion.
      for (const auto& clause : text::split_clauses(record.sentence)) {
        std::string effective = clause.text;
        if (clause.inherited_subject) {
          effective = *clause.inherited_subject + " " + effective;
        }
        text::PremiseFacts facts =
            text::extract_facts(effective, result.field_dictionary);
        // A coordinated clause inherits the sentence's requirement force:
        // "a message received with X ... and MUST be rejected" keeps its
        // SR grade even when the modal lives in a sibling clause.
        facts.modal_strength = std::max(facts.modal_strength, score.strength);
        for (const auto& hypothesis : templates) {
          text::EntailmentResult er = entailment.entails(facts, hypothesis);
          if (er.entailed) {
            ConvertedSr converted;
            converted.hypothesis = hypothesis;
            converted.clause = effective;
            converted.confidence = er.confidence;
            record.conversions.push_back(std::move(converted));
          }
        }
      }
      result.converted_sr_count += record.conversions.size();
      result.srs.push_back(std::move(record));
    }
  }
  return result;
}

}  // namespace hdiff::core
