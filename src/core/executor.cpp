#include "core/executor.h"

#include <thread>
#include <utility>

namespace hdiff::core {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

const net::ChainObservation* ObservationMemo::find(std::string_view raw) {
  const std::uint64_t hash = hasher_(raw);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.buckets.find(hash);
  if (it != shard.buckets.end()) {
    for (const Entry& entry : it->second) {
      if (entry.raw == raw) {  // full-byte confirm: collisions cannot alias
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry.obs.get();
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

const net::ChainObservation* ObservationMemo::insert(std::string_view raw,
                                                     net::ChainObservation obs) {
  const std::uint64_t hash = hasher_(raw);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<Entry>& bucket = shard.buckets[hash];
  for (const Entry& entry : bucket) {
    if (entry.raw == raw) return entry.obs.get();  // racing worker won
  }
  bucket.push_back(Entry{
      std::string(raw),
      std::make_unique<net::ChainObservation>(std::move(obs))});
  return bucket.back().obs.get();
}

std::size_t ObservationMemo::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [hash, bucket] : shard.buckets) total += bucket.size();
  }
  return total;
}

ParallelExecutor::ParallelExecutor(ExecutorConfig config) : config_(config) {}

std::size_t ParallelExecutor::resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

DetectionResult ParallelExecutor::run(const net::Chain& chain,
                                      const std::vector<TestCase>& cases,
                                      ExecutorStats* stats) const {
  const std::size_t jobs = resolve_jobs(config_.jobs);
  DetectionEngine engine;  // stateless; shared by all workers
  DetectionResult total;
  ExecutorStats local;
  local.jobs = jobs;
  local.cases = cases.size();

  ObservationMemo memo;
  net::VerdictCache verdicts;
  ObservationMemo* memo_p = config_.memoize ? &memo : nullptr;
  net::VerdictCache* verdicts_p = config_.memoize ? &verdicts : nullptr;

  // Observe-and-evaluate for one case.  Memo hits (and freshly inserted
  // entries) are evaluated in place — detection reads only the verdict
  // maps, so no copy or uuid patching is needed.
  const auto evaluate_case = [&](const TestCase& tc,
                                 net::EchoServer& echo) -> DetectionResult {
    if (memo_p) {
      if (const net::ChainObservation* cached = memo_p->find(tc.raw)) {
        // Keep the echo log faithful: a duplicate case still produces the
        // same forwards on the wire.
        for (const auto& [proxy, v] : cached->proxies) {
          if (v.forwarded()) echo.record(tc.uuid, proxy, v.forwarded_bytes);
        }
        return engine.evaluate(tc, *cached);
      }
      const net::ChainObservation* stored = memo_p->insert(
          tc.raw, chain.observe(tc.uuid, tc.raw, &echo, verdicts_p));
      return engine.evaluate(tc, *stored);
    }
    return engine.evaluate(tc, chain.observe(tc.uuid, tc.raw, &echo));
  };

  const auto finish = [&](std::size_t echo_records, std::size_t echo_dropped) {
    local.memo_hits = memo.hits();
    local.memo_misses = memo.misses();
    const net::VerdictCache::Stats vs = verdicts.stats();
    local.verdict_hits = vs.hits;
    local.verdict_misses = vs.misses;
    local.echo_records = echo_records;
    local.echo_dropped = echo_dropped;
    if (stats) *stats = local;
  };

  if (jobs <= 1) {
    // Serial path: with memoization off this is exactly the seed's loop in
    // `Pipeline::run` — same calls, same order, no pool.
    net::EchoServer echo(config_.echo_max_records);
    for (const auto& tc : cases) {
      DetectionEngine::accumulate(total, evaluate_case(tc, echo));
    }
    finish(echo.log().size(), echo.dropped());
    return total;
  }

  // Parallel path: workers claim case indices from a shared counter and
  // write per-case deltas; the merge then replays the deltas in index order,
  // so dedupe-by-first-occurrence in `accumulate` resolves exactly as the
  // serial loop would, independent of scheduling.
  std::vector<DetectionResult> deltas(cases.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::unique_ptr<net::EchoServer>> echoes;
  echoes.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    echoes.push_back(
        std::make_unique<net::EchoServer>(config_.echo_max_records));
  }

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&, w] {
      net::EchoServer& echo = *echoes[w];
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cases.size()) break;
        deltas[i] = evaluate_case(cases[i], echo);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (const DetectionResult& delta : deltas) {
    DetectionEngine::accumulate(total, delta);
  }

  std::size_t echo_records = 0;
  std::size_t echo_dropped = 0;
  for (const auto& echo : echoes) {
    echo_records += echo->log().size();
    echo_dropped += echo->dropped();
  }
  finish(echo_records, echo_dropped);
  return total;
}

}  // namespace hdiff::core
