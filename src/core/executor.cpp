#include "core/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace hdiff::core {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

const net::ChainObservation* ObservationMemo::find(std::string_view raw) {
  const std::uint64_t hash = hasher_(raw);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.buckets.find(hash);
  if (it != shard.buckets.end()) {
    for (const Entry& entry : it->second) {
      if (entry.raw == raw) {  // full-byte confirm: collisions cannot alias
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry.obs.get();
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

const net::ChainObservation* ObservationMemo::insert(std::string_view raw,
                                                     net::ChainObservation obs) {
  const std::uint64_t hash = hasher_(raw);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<Entry>& bucket = shard.buckets[hash];
  for (const Entry& entry : bucket) {
    if (entry.raw == raw) return entry.obs.get();  // racing worker won
  }
  bucket.push_back(Entry{
      std::string(raw),
      std::make_unique<net::ChainObservation>(std::move(obs))});
  bytes_.fetch_add(raw.size(), std::memory_order_relaxed);
  return bucket.back().obs.get();
}

std::size_t ObservationMemo::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [hash, bucket] : shard.buckets) total += bucket.size();
  }
  return total;
}

ParallelExecutor::ParallelExecutor(ExecutorConfig config) : config_(config) {}

std::size_t ParallelExecutor::resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

DetectionResult ParallelExecutor::run(const net::Chain& chain,
                                      const std::vector<TestCase>& cases,
                                      ExecutorStats* stats) const {
  const std::size_t jobs = resolve_jobs(config_.jobs);
  DetectionEngine engine;  // stateless; shared by all workers
  DetectionResult total;
  ExecutorStats local;
  local.jobs = jobs;
  local.cases = cases.size();

  // Per-run caches, unless the caller supplied longer-lived ones (campaign
  // sessions share a memo across rounds and minimizer replays).
  ObservationMemo own_memo;
  net::VerdictCache own_verdicts;
  ObservationMemo& memo = config_.shared_memo ? *config_.shared_memo : own_memo;
  net::VerdictCache& verdicts =
      config_.shared_verdicts ? *config_.shared_verdicts : own_verdicts;
  ObservationMemo* memo_p = config_.memoize ? &memo : nullptr;
  net::VerdictCache* verdicts_p = config_.memoize ? &verdicts : nullptr;

  // Observability hooks, all null/disabled by default.  Registry name
  // lookups happen here, once per run; workers touch only sharded atomics
  // and their own trace buffers.
  const obs::Observability& ob = config_.obs;
  obs::TraceSink* const trace = ob.trace;
  const obs::Clock& clock = ob.effective_clock();
  const obs::ChainObs chain_obs = obs::ChainObs::from(ob);
  const obs::ChainObs* const track = chain_obs.active() ? &chain_obs : nullptr;
  obs::Histogram* const case_us =
      ob.metrics ? &ob.metrics->histogram("hdiff_executor_case_micros")
                 : nullptr;

  // Per-case fault bookkeeping, written by whichever worker runs the case
  // and folded into the stats in stable case-index order.
  struct CaseStatus {
    bool quarantined = false;
    std::size_t attempts_used = 1;
    std::size_t faulted_attempts = 0;
    std::array<std::size_t, net::kChainErrorCount> fault_counts{};
    net::ChainError last_error = net::ChainError::kNone;
    std::string last_detail;
  };

  const int attempts = std::max(1, config_.retry.attempts);
  const int deadline_ms = config_.retry.case_deadline_ms;

  // Observe-and-evaluate for one case.  Memo hits (and freshly inserted
  // entries) are evaluated in place — detection reads only the verdict
  // maps, so no copy or uuid patching is needed.  A faulted observation is
  // retried with backoff; only fault-free observations are cached or
  // evaluated, and a case that faults through its whole retry budget is
  // quarantined (empty delta, `status.quarantined` set).
  const auto observe_and_evaluate =
      [&](const TestCase& tc, net::EchoServer& echo, CaseStatus& status,
          net::ChainObservation* prefetched) -> DetectionResult {
    if (memo_p) {
      // Only successful observations are ever inserted, so a hit is a
      // known-good observation regardless of the fault schedule.
      if (const net::ChainObservation* cached = memo_p->find(tc.raw)) {
        // Keep the echo log faithful: a duplicate case still produces the
        // same forwards on the wire.
        for (const auto& [proxy, v] : cached->proxies) {
          if (v.forwarded()) echo.record(tc.uuid, proxy, v.forwarded_bytes);
        }
        return engine.evaluate(tc, *cached);
      }
    }
    const auto start = std::chrono::steady_clock::now();
    for (int attempt = 0;; ++attempt) {
      net::ChainObservation obs;
      bool via_hook = false;
      if (prefetched && attempt == 0) {
        // First attempt of a batched case: the block observation was
        // already driven by the hook when the worker claimed the block.
        obs = std::move(*prefetched);
        via_hook = true;
      } else if (config_.observe_batch) {
        // Retry (or a case the hook under-delivered): re-observe just this
        // case through the same transport.
        std::vector<net::ChainObservation> one;
        config_.observe_batch(&tc, 1, one);
        if (!one.empty()) {
          obs = std::move(one.front());
        } else {
          obs.uuid = tc.uuid;
          obs.request = tc.raw;
          obs.fault = net::ChainError::kConnectFail;
          obs.fault_detail = "observe_batch produced no observation";
        }
        via_hook = true;
      } else {
        obs = chain.observe(tc.uuid, tc.raw, &echo, verdicts_p, track);
      }
      status.attempts_used = static_cast<std::size_t>(attempt) + 1;
      if (!obs.faulted()) {
        if (via_hook) {
          // chain.observe records forwards itself; a hook-produced
          // observation flushes them here so the echo log stays faithful.
          for (const auto& [proxy, v] : obs.proxies) {
            if (v.forwarded()) echo.record(tc.uuid, proxy, v.forwarded_bytes);
          }
        }
        if (memo_p) {
          const net::ChainObservation* stored =
              memo_p->insert(tc.raw, std::move(obs));
          return engine.evaluate(tc, *stored);
        }
        return engine.evaluate(tc, obs);
      }
      ++status.faulted_attempts;
      ++status.fault_counts[static_cast<std::size_t>(obs.fault)];
      status.last_error = obs.fault;
      status.last_detail = std::move(obs.fault_detail);
      if (trace) {
        trace->instant("fault", "executor", "error",
                       std::string(net::to_string(obs.fault)));
      }
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const bool out_of_time = deadline_ms > 0 && elapsed_ms >= deadline_ms;
      if (attempt + 1 >= attempts || out_of_time) {
        status.quarantined = true;
        if (out_of_time) {
          status.last_detail += " [case deadline exceeded]";
        }
        if (trace) trace->instant("quarantine", "executor", "uuid", tc.uuid);
        return DetectionResult{};
      }
      obs::Span backoff(trace, "backoff", "executor");
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config_.retry.backoff_ms(attempt, tc.raw)));
    }
  };

  // Timing wrapper: one "case" span and one latency sample per test case.
  // With obs disabled this is a transparent pass-through.
  const auto evaluate_case =
      [&](const TestCase& tc, net::EchoServer& echo, CaseStatus& status,
          net::ChainObservation* prefetched = nullptr) -> DetectionResult {
    if (!trace && !case_us) {
      return observe_and_evaluate(tc, echo, status, prefetched);
    }
    const std::uint64_t c0 = clock.now_us();
    DetectionResult delta = observe_and_evaluate(tc, echo, status, prefetched);
    const std::uint64_t c1 = clock.now_us();
    if (case_us) case_us->observe(c1 - c0);
    if (trace) trace->complete("case", "executor", c0, c1 - c0, "uuid", tc.uuid);
    return delta;
  };

  // Fold one case's fault bookkeeping into the run stats (call in stable
  // case-index order so the quarantine report is deterministic).
  const auto fold_status = [&](const TestCase& tc, CaseStatus& status) {
    local.faulted_attempts += status.faulted_attempts;
    local.retry_attempts += status.attempts_used - 1;
    for (std::size_t k = 0; k < net::kChainErrorCount; ++k) {
      local.fault_counts[k] += status.fault_counts[k];
    }
    if (status.quarantined) {
      local.quarantined.push_back(QuarantinedCase{
          tc.uuid, status.last_error, status.attempts_used,
          std::move(status.last_detail)});
    } else if (status.faulted_attempts > 0) {
      ++local.recovered_cases;
    }
  };

  const auto finish = [&](std::size_t echo_records, std::size_t echo_dropped) {
    local.memo_hits = memo.hits();
    local.memo_misses = memo.misses();
    const net::VerdictCache::Stats vs = verdicts.stats();
    local.verdict_hits = vs.hits;
    local.verdict_misses = vs.misses;
    local.memo_bytes = memo.stored_bytes();
    local.verdict_bytes = vs.bytes;
    local.echo_records = echo_records;
    local.echo_dropped = echo_dropped;
    local.quarantined_cases = local.quarantined.size();
    // Fold run totals into the registry once, after the workers joined —
    // the hot path never touches these names.
    if (ob.metrics) {
      obs::Registry& m = *ob.metrics;
      m.gauge("hdiff_executor_jobs").set(static_cast<std::int64_t>(local.jobs));
      m.counter("hdiff_executor_cases_total").add(local.cases);
      m.counter("hdiff_memo_hits_total").add(local.memo_hits);
      m.counter("hdiff_memo_misses_total").add(local.memo_misses);
      m.counter("hdiff_verdict_hits_total").add(local.verdict_hits);
      m.counter("hdiff_verdict_misses_total").add(local.verdict_misses);
      m.gauge("hdiff_memo_bytes").set(static_cast<std::int64_t>(local.memo_bytes));
      m.gauge("hdiff_verdict_bytes")
          .set(static_cast<std::int64_t>(local.verdict_bytes));
      m.counter("hdiff_echo_records_total").add(local.echo_records);
      m.counter("hdiff_echo_dropped_total").add(local.echo_dropped);
      m.counter("hdiff_faulted_attempts_total").add(local.faulted_attempts);
      m.counter("hdiff_retry_attempts_total").add(local.retry_attempts);
      m.counter("hdiff_recovered_cases_total").add(local.recovered_cases);
      m.counter("hdiff_quarantined_cases_total").add(local.quarantined_cases);
    }
    if (stats) *stats = std::move(local);
  };

  // Scheduling granularity: without the batch hook every claim is a single
  // case (bitwise the historical behaviour); with it, workers claim
  // contiguous blocks so the hook can drive a whole block concurrently.
  const std::size_t block_size =
      config_.observe_batch ? std::max<std::size_t>(1, config_.batch_size) : 1;

  if (jobs <= 1) {
    // Serial path: with memoization off this is exactly the seed's loop in
    // `Pipeline::run` — same calls, same order, no pool.
    net::EchoServer echo(config_.echo_max_records);
    std::vector<net::ChainObservation> block_obs;
    for (std::size_t base = 0; base < cases.size(); base += block_size) {
      const std::size_t n = std::min(block_size, cases.size() - base);
      if (config_.observe_batch) {
        block_obs.clear();
        config_.observe_batch(&cases[base], n, block_obs);
      }
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = base + j;
        const TestCase& tc = cases[i];
        CaseStatus status;
        net::ChainObservation* pre =
            j < block_obs.size() ? &block_obs[j] : nullptr;
        DetectionResult delta = evaluate_case(tc, echo, status, pre);
        if (config_.on_delta) {
          config_.on_delta(i, tc, delta, status.quarantined);
        }
        DetectionEngine::accumulate(total, delta);
        fold_status(tc, status);
      }
    }
    finish(echo.log().size(), echo.dropped());
    return total;
  }

  // Parallel path: workers claim case indices from a shared counter and
  // write per-case deltas; the merge then replays the deltas in index order,
  // so dedupe-by-first-occurrence in `accumulate` resolves exactly as the
  // serial loop would, independent of scheduling.
  std::vector<DetectionResult> deltas(cases.size());
  std::vector<CaseStatus> statuses(cases.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::unique_ptr<net::EchoServer>> echoes;
  echoes.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    echoes.push_back(
        std::make_unique<net::EchoServer>(config_.echo_max_records));
  }

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&, w] {
      net::EchoServer& echo = *echoes[w];
      std::vector<net::ChainObservation> block_obs;
      for (;;) {
        const std::size_t base =
            next.fetch_add(block_size, std::memory_order_relaxed);
        if (base >= cases.size()) break;
        const std::size_t n = std::min(block_size, cases.size() - base);
        if (config_.observe_batch) {
          block_obs.clear();
          config_.observe_batch(&cases[base], n, block_obs);
        }
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t i = base + j;
          net::ChainObservation* pre =
              j < block_obs.size() ? &block_obs[j] : nullptr;
          deltas[i] = evaluate_case(cases[i], echo, statuses[i], pre);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (config_.on_delta) {
      config_.on_delta(i, cases[i], deltas[i], statuses[i].quarantined);
    }
    DetectionEngine::accumulate(total, deltas[i]);
    fold_status(cases[i], statuses[i]);
  }

  std::size_t echo_records = 0;
  std::size_t echo_dropped = 0;
  for (const auto& echo : echoes) {
    echo_records += echo->log().size();
    echo_dropped += echo->dropped();
  }
  finish(echo_records, echo_dropped);
  return total;
}

}  // namespace hdiff::core
