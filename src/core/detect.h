// Difference analysis and detection models (paper §III-D, §IV-A).
//
// Detection rules are predicates over the HMetrics collected at the three
// chain stages (the paper's manual input #3).  Three models ship:
//
//   HRS   — the front-end forwarded bytes it framed as exactly one request,
//           but a back-end parsing those bytes leaves a non-empty remainder
//           (smuggled next request) or blocks awaiting more bytes (desync).
//   HoT   — the front-end forwarded the request while routing on a host
//           different from the one the back-end derives from the same bytes.
//   CPDoS — the front-end forwarded-and-would-cache a request that some
//           back-end answers with an error while another back-end serves it,
//           poisoning the cache key with an error page.
//
// Additionally, every SR-derived test case carries an assertion; an
// implementation whose HMetrics violates the assertion is flagged as
// deviating from the specification (single-implementation testing, which
// plain differential testing cannot do).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/testcase.h"
#include "net/chain.h"

namespace hdiff::core {

/// One specification violation by one implementation.
struct SrViolation {
  std::string impl;
  std::string sr_id;
  std::string uuid;
  AttackClass category = AttackClass::kGeneric;
  std::string detail;
};

/// Which side of a pair finding is at fault (drives Table I attribution).
enum class Blame {
  kAuto,   ///< decide via the strict reference parser (request-path HRS)
  kFront,  ///< the front-end's handling is the defect
  kBack,   ///< the back-end's handling is the defect
};

/// One affected (front-end, back-end) pair.
struct PairFinding {
  std::string front;
  std::string back;
  AttackClass attack = AttackClass::kGeneric;
  std::string uuid;
  std::string detail;
  Blame blame = Blame::kAuto;
};

/// Counters over plain behavioural discrepancies (inputs on which direct
/// back-end verdicts disagree), feeding the ">100 violations and
/// discrepancies" statistic of §IV-B.
struct DiscrepancyStats {
  std::size_t status_disagreements = 0;
  std::size_t host_disagreements = 0;
  std::size_t body_disagreements = 0;
  std::size_t inputs_with_discrepancy = 0;
};

struct DetectionResult {
  std::vector<SrViolation> violations;
  std::vector<PairFinding> pairs;
  DiscrepancyStats discrepancies;
  /// Table II accumulation: vector label -> attack classes observed.  Built
  /// during evaluation (pair deduplication would otherwise shadow labels of
  /// later test cases hitting an already-known pair).
  std::map<std::string, std::set<std::string>> vector_hits;
};

class DetectionEngine {
 public:
  /// Evaluate one observed test case under all detection models.
  DetectionResult evaluate(const TestCase& tc,
                           const net::ChainObservation& obs) const;

  /// Merge `delta` into `total` (pairs deduplicated by front/back/attack,
  /// violations by impl/sr, counters summed).
  static void accumulate(DetectionResult& total, const DetectionResult& delta);
};

/// Aggregated findings across a whole run, shaped like the paper's results.
struct VulnMatrix {
  /// Table I: per implementation, which attack classes it is vulnerable to.
  struct Row {
    bool hrs = false;
    bool hot = false;
    bool cpdos = false;
  };
  std::map<std::string, Row> by_impl;

  /// Figure 7: affected pairs per attack class ("front->back").
  std::set<std::string> hrs_pairs;
  std::set<std::string> hot_pairs;
  std::set<std::string> cpdos_pairs;

  /// Table II: vector label -> attack classes observed for it.
  std::map<std::string, std::set<std::string>> vector_catalogue;
};

/// Build the vulnerability matrix from accumulated findings.
/// Column semantics follow the paper: HRS marks implementations with
/// framing-related specification violations ("do not fully follow HTTP
/// specifications, which could be potentially exploited"); HoT marks
/// members of affected pairs; CPDoS marks front-ends of affected pairs.
VulnMatrix build_matrix(const DetectionResult& total,
                        const std::vector<TestCase>& cases);

}  // namespace hdiff::core
