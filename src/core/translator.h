// SR Translator (paper §III-D).
//
// Translates converted SRs into test cases with assertions: the message
// description selects a generation recipe (the paper's manually-supplied
// "SR semantic definitions" — valid/invalid/repeat/missing/... per field),
// and the role action becomes the assertion checked during differential
// testing ("close connection, report error, respond 200, not forward ...").
// An implementation that violates the assertion deviates from the
// specification.
#pragma once

#include <string>
#include <vector>

#include "abnf/generator.h"
#include "core/analyzer.h"
#include "core/testcase.h"

namespace hdiff::core {

struct TranslatorConfig {
  /// Cap on ABNF-enumerated base values per recipe.
  std::size_t values_per_recipe = 8;
  /// Include mutation-derived variants of each recipe.
  bool include_mutations = true;
  std::size_t mutants_per_case = 12;
};

class SrTranslator {
 public:
  /// `grammar` supplies valid base values (Figure 5: "generate basic HTTP
  /// requests with key-value pairs using ABNF rules").
  SrTranslator(const abnf::Grammar& grammar, TranslatorConfig config = {});

  /// Translate one SR record into test cases.  Records whose conversions
  /// carry no generatable message description yield nothing.
  std::vector<TestCase> translate(const SrRecord& sr) const;

  /// Translate a whole analyzer result.
  std::vector<TestCase> translate_all(const std::vector<SrRecord>& srs) const;

 private:
  abnf::Generator generator_;
  TranslatorConfig config_;
  mutable std::size_t uuid_counter_ = 0;

  std::string next_uuid(std::string_view sr_id) const;
};

}  // namespace hdiff::core
