// Parallel differential-testing executor — the hot loop of Figure 6.
//
// Step 3 of the paper's workflow fires every test case at every proxy and
// replays every forward into every back-end.  Each case is independent, so
// the stage is embarrassingly parallel; the seed ran it as a single-threaded
// loop in `Pipeline::run`.  `ParallelExecutor` shards the case list across a
// fixed-size worker pool (each worker with its own `net::EchoServer` and its
// own per-case `DetectionResult` deltas) and merges the deltas in stable
// case-index order, so the accumulated result is bit-identical to the serial
// run regardless of thread scheduling.
//
// Underneath sits a two-level observation memo:
//   * `ObservationMemo` — whole-case level.  ABNF generation emits many
//     byte-identical raw requests; the first observation of a given byte
//     string is cached and reused (uuid patched) for every later duplicate.
//   * `net::VerdictCache` — model-call level, shared with the chain.  It
//     catches the far larger redundancy the case-level memo cannot see:
//     distinct raw requests whose *forwarded* bytes collapse after proxy
//     normalization, and the per-(proxy, back-end) respond/relay calls the
//     seed chain recomputed for byte-identical forwards.
// Both caches key on full input bytes (hash + full-byte compare), memoize
// only deterministic `const` calls, and therefore never change findings —
// the determinism test asserts this over the whole pipeline.
//
// Graceful degradation: an observation that comes back with a harness
// fault (ChainObservation::fault, e.g. from a fault-injected fleet or a
// flaky live chain) is never evaluated, never cached, and never aborts the
// run.  The executor retries it under `ExecutorConfig::retry` (exponential
// backoff, deterministic jitter, per-case deadline); cases that still
// fault are *quarantined* — excluded from difference analysis and reported
// per-case in `ExecutorStats::quarantined` — so a bad harness leg can
// reduce coverage but can never masquerade as a behavioural difference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/detect.h"
#include "core/testcase.h"
#include "net/chain.h"
#include "obs/obs.h"

namespace hdiff::core {

/// FNV-1a over the raw bytes; the memo's default hash.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Cross-case observation cache keyed by raw request bytes.  A hash picks
/// the bucket; entries within a bucket are confirmed by full-byte
/// comparison, so distinct byte strings can never alias even under hash
/// collision.  Entries are heap-allocated and never evicted, so pointers
/// returned by `find` stay valid for the memo's lifetime.  Internally
/// synchronized (sharded locks); hit/miss counters are exact.
class ObservationMemo {
 public:
  using Hasher = std::uint64_t (*)(std::string_view) noexcept;

  /// `hasher` is injectable for collision testing; production uses FNV-1a.
  explicit ObservationMemo(Hasher hasher = &fnv1a64) : hasher_(hasher) {}

  /// Returns the cached observation for `raw`, or nullptr and counts a
  /// miss.  The entry's `uuid` is the first observer's; detection only
  /// reads the verdict maps, so callers evaluating against a cached entry
  /// need no per-case patching.
  const net::ChainObservation* find(std::string_view raw);

  /// Caches `obs` as the observation for `raw` and returns the stored
  /// entry.  First insert for a given byte string wins; a racing worker's
  /// later insert is discarded (the earlier, identical entry is returned).
  const net::ChainObservation* insert(std::string_view raw,
                                      net::ChainObservation obs);

  std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Raw request bytes retained as memo keys (memory footprint proxy).
  std::size_t stored_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Entry {
    std::string raw;
    std::unique_ptr<net::ChainObservation> obs;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<Entry>> buckets;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard_for(std::uint64_t hash) { return shards_[hash % kShards]; }

  Hasher hasher_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> bytes_{0};
};

struct ExecutorConfig {
  /// Worker threads; 0 = hardware_concurrency().  `jobs = 1` runs the exact
  /// pre-executor serial loop in the calling thread (no pool is spawned).
  std::size_t jobs = 0;
  /// Enable the observation memo and verdict cache.  Disabling reproduces
  /// the seed's every-case-from-scratch behaviour; findings are identical
  /// either way.
  bool memoize = true;
  /// `max_records` bound for each worker's EchoServer (0 = unbounded).
  /// Keeps resident memory flat at 92k-case scale.
  std::size_t echo_max_records = 4096;
  /// Degradation policy for harness faults (fault-injected or live flaky
  /// fleets): a faulted observation is retried up to `retry.attempts` times
  /// with deterministic backoff, bounded by `retry.case_deadline_ms`; a
  /// case still faulting afterwards is quarantined — excluded from
  /// difference analysis and reported in ExecutorStats — instead of
  /// aborting the run or poisoning findings.  On a fault-free fleet this
  /// costs nothing (no fault -> no retry, no sleep).
  net::RetryPolicy retry;
  /// Optional tracing/metrics (obs.h).  Default-disabled; when enabled the
  /// executor emits one "case" span per test case, chain-hop spans and
  /// latency histograms via obs::ChainObs, "fault"/"quarantine" instants,
  /// and folds its counters into the registry when the run finishes.
  /// Observability only reads — findings are byte-identical either way.
  obs::Observability obs;

  // ---- campaign hooks (src/campaign) ----
  /// Caller-owned caches reused *across* `run()` calls (the campaign engine
  /// keeps one of each for a whole multi-round session, so a mutant already
  /// observed in round k costs a hash lookup in round k+n, and minimizer
  /// replays are nearly free).  When set they replace the per-run caches;
  /// `memoize = false` disables both, shared or not.  Sharing never changes
  /// findings: entries are keyed by full input bytes and observations are
  /// deterministic, so a cross-run hit returns exactly what a fresh
  /// observation would.
  ObservationMemo* shared_memo = nullptr;
  net::VerdictCache* shared_verdicts = nullptr;
  // ---- batch observation hook (live fleets over the event loop) ----
  /// When set, observations come from this hook instead of `chain.observe`:
  /// workers claim contiguous blocks of up to `batch_size` case indices and
  /// call the hook once per block, so a live transport (net::LiveFleet over
  /// net::EventLoop) can drive the whole block's roundtrips concurrently
  /// from one worker thread.  The hook appends one ChainObservation per
  /// block case to `out` (`out[k]` for `block[k]`); a case whose first
  /// observation faults is retried through the hook with n=1 under exactly
  /// the retry/quarantine semantics of the chain path.  Memoization, the
  /// per-case spans and the deterministic case-index merge are unchanged —
  /// batching only overlaps the waiting.  (A block case that turns out to
  /// be a memo hit discards its prefetched observation.)
  std::size_t batch_size = 16;
  std::function<void(const TestCase* block, std::size_t n,
                     std::vector<net::ChainObservation>& out)>
      observe_batch;
  /// Per-case delta tap, invoked once per test case in stable case-index
  /// order (after the workers joined, during the deterministic merge), with
  /// the case's own `DetectionResult` delta *before* accumulation dedup.
  /// `quarantined` distinguishes "no divergence" from "never observed"
  /// (the delta is empty either way).  The campaign engine derives
  /// divergence signatures from these deltas; accumulated totals cannot
  /// recover per-case attribution.
  std::function<void(std::size_t index, const TestCase& tc,
                     const DetectionResult& delta, bool quarantined)>
      on_delta;
};

/// One case excluded from difference analysis after exhausting retries.
struct QuarantinedCase {
  std::string uuid;
  net::ChainError error = net::ChainError::kNone;  ///< last fault seen
  std::size_t attempts = 0;                        ///< observation attempts
  std::string detail;
};

struct ExecutorStats {
  std::size_t jobs = 0;           ///< workers actually used
  std::size_t cases = 0;          ///< test cases executed
  std::size_t memo_hits = 0;      ///< whole-case observation reuses
  std::size_t memo_misses = 0;
  std::size_t verdict_hits = 0;   ///< individual model-call reuses
  std::size_t verdict_misses = 0;
  std::size_t memo_bytes = 0;     ///< raw bytes retained as memo keys
  std::size_t verdict_bytes = 0;  ///< input bytes retained as cache keys
  std::size_t echo_records = 0;   ///< forwards retained across worker echoes
  std::size_t echo_dropped = 0;   ///< forwards dropped by the echo bound

  // ---- fault tolerance (all zero on a fault-free run) ----
  std::size_t faulted_attempts = 0;   ///< observation attempts that faulted
  std::size_t retry_attempts = 0;     ///< re-observations performed
  std::size_t recovered_cases = 0;    ///< faulted at least once, then succeeded
  std::size_t quarantined_cases = 0;  ///< == quarantined.size()
  /// Faulted attempts by ChainError (index by static_cast<size_t>).
  std::array<std::size_t, net::kChainErrorCount> fault_counts{};
  /// Quarantined cases in stable case-index order (deterministic for a
  /// given fault schedule, independent of jobs).
  std::vector<QuarantinedCase> quarantined;

  double memo_hit_rate() const noexcept {
    const std::size_t total = memo_hits + memo_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(total);
  }
  double verdict_hit_rate() const noexcept {
    const std::size_t total = verdict_hits + verdict_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(verdict_hits) /
                            static_cast<double>(total);
  }
};

/// Runs the differential-testing stage (observe + evaluate + accumulate)
/// over a case list.  Output is byte-identical to the seed's serial loop for
/// every configuration; `jobs` and `memoize` trade only time and memory.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorConfig config = {});

  DetectionResult run(const net::Chain& chain,
                      const std::vector<TestCase>& cases,
                      ExecutorStats* stats = nullptr) const;

  /// 0 -> hardware_concurrency() (min 1), otherwise the request itself.
  static std::size_t resolve_jobs(std::size_t requested);

 private:
  ExecutorConfig config_;
};

}  // namespace hdiff::core
