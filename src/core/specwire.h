// Line-based wire formats for buildable request specs.
//
// The campaign checkpoint, the corpus files, the serve shard results and
// the stream corpus (src/stream) all share one serialization discipline:
// line-based text, space-separated fields, hex-encoded payloads so NUL/CTL
// bytes survive and the files diff cleanly under version control.  The
// helpers live in core (below both campaign and stream) so the stream
// subsystem can serialize per-message specs without depending on the
// campaign store that persists them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "http/serialize.h"

namespace hdiff::core {

/// Space-safe field encoding shared by every line-based campaign/stream
/// file (checkpoint, shard results, stream corpus): hex for non-empty
/// payloads, "-" for the empty string (zero hex bytes would vanish under
/// space-tokenization).
std::string field_enc(std::string_view s);
bool field_dec(std::string_view token, std::string* out);

/// Split a line into its space-separated fields.
std::vector<std::string> split_fields(std::string_view line);

/// Canonical text form of a spec (field-per-line, hex payloads).  The
/// corpus file format and the content-address preimage.
std::string serialize_spec(const http::RequestSpec& spec);
bool deserialize_spec(std::string_view text, http::RequestSpec* out);

}  // namespace hdiff::core
