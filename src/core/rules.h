// User-defined detection rules over HMetrics (paper §III-D: "Under
// different detection models, users can define detection rules based on
// HMetrics to discover semantic gap attacks").
//
// A custom rule is a named predicate over the HMetrics projection of one
// chain observation: the front-end's metrics and the back-end's metrics for
// the same forwarded bytes.  The built-in HRS/HoT/CPDoS models in detect.h
// are expressible in exactly this vocabulary; CustomRuleEngine lets a user
// add further models (e.g. header-reflection checks, body-integrity checks)
// without touching the framework.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/hmetrics.h"
#include "core/testcase.h"
#include "net/chain.h"

namespace hdiff::core {

/// Inputs to a pair rule: the same test case as seen by the front-end and by
/// one back-end (replaying the front-end's forwarded bytes), plus the
/// response relay through the front-end (nullptr when unavailable).
struct PairMetrics {
  const HMetrics& front;  ///< stage kProxy
  const HMetrics& back;   ///< stage kReplay
  const impls::RelayOutcome* relay = nullptr;
};

/// A match produced by a custom rule.
struct RuleMatch {
  std::string rule;
  std::string front;
  std::string back;
  AttackClass attack = AttackClass::kGeneric;
  std::string uuid;
  std::string detail;
};

/// A named pair rule.  Return a non-empty detail string to report a match.
struct PairRule {
  std::string name;
  AttackClass attack = AttackClass::kGeneric;
  std::function<std::string(const PairMetrics&)> predicate;
};

/// A named single-implementation rule over a direct back-end observation.
struct DirectRule {
  std::string name;
  AttackClass attack = AttackClass::kGeneric;
  std::function<std::string(const HMetrics&)> predicate;
};

class CustomRuleEngine {
 public:
  void add(PairRule rule);
  void add(DirectRule rule);

  /// Project the observation onto HMetrics and evaluate every rule.
  std::vector<RuleMatch> evaluate(const TestCase& tc,
                                  const net::ChainObservation& obs) const;

  std::size_t rule_count() const noexcept {
    return pair_rules_.size() + direct_rules_.size();
  }

  /// Registered rules, in registration order (analysis::RuleBaseLint probes
  /// these against synthetic HMetrics batteries).
  const std::vector<PairRule>& pair_rules() const noexcept {
    return pair_rules_;
  }
  const std::vector<DirectRule>& direct_rules() const noexcept {
    return direct_rules_;
  }

 private:
  std::vector<PairRule> pair_rules_;
  std::vector<DirectRule> direct_rules_;
};

/// The built-in detection models of detect.h, restated as custom rules —
/// both a reference for rule authors and the regression oracle showing the
/// two formulations agree (tests/core/rules_test.cpp).
CustomRuleEngine make_builtin_rules();

}  // namespace hdiff::core
