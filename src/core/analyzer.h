// Documentation Analyzer (paper §III-C).
//
// Pipeline over the embedded RFC corpus:
//   1. clean pagination artifacts and split sentences;
//   2. sentiment-based SR finder flags requirement-grade sentences;
//   3. cross-sentence referents are resolved by bounded forward search and
//      merged into the sentence;
//   4. the Text2Rule converter splits clauses, extracts facts through the
//      dependency tree, and classifies each clause against the SR seed
//      templates via textual entailment — entailed instances become
//      converted SRs;
//   5. ABNF rules are extracted per document and adapted (merged,
//      prose-resolved, custom-substituted) into one grammar.
// The SR seed template set is the paper's manual input #1; a default set
// parameterized by the ABNF-derived field dictionary is provided.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abnf/adaptor.h"
#include "abnf/extractor.h"
#include "text/entailment.h"
#include "text/sentiment.h"

namespace hdiff::core {

/// One entailed seed-template instance.
struct ConvertedSr {
  text::Hypothesis hypothesis;
  std::string clause;      ///< the clause that entailed it
  double confidence = 0.0;
};

/// One sentence flagged by the SR finder, with its conversions.
struct SrRecord {
  std::string id;          ///< e.g. "rfc7230-sr-017"
  std::string doc;
  std::string sentence;    ///< referent-merged sentence text
  double sentiment = 0.0;
  text::SentimentPolarity polarity = text::SentimentPolarity::kNeutral;
  std::vector<ConvertedSr> conversions;
};

struct AnalyzerConfig {
  double sentiment_threshold = 0.45;
  double entailment_min_modal = 0.3;
  std::size_t anaphora_window = 5;
  std::size_t min_sentence_words = 3;
};

struct AnalyzerResult {
  // Corpus statistics (experiment E1).
  std::size_t total_words = 0;
  std::size_t total_sentences = 0;

  std::vector<SrRecord> srs;
  std::size_t converted_sr_count = 0;  ///< total entailed instances

  abnf::Grammar grammar;               ///< adapted, merged grammar
  abnf::ExtractionStats abnf_stats;    ///< summed over documents
  abnf::AdaptReport adapt_report;

  /// Lower-case protocol element names recognizable in prose (header-field
  /// rule names plus core message elements); feeds fact extraction.
  std::set<std::string> field_dictionary;
};

class DocumentationAnalyzer {
 public:
  explicit DocumentationAnalyzer(AnalyzerConfig config = {});

  /// Override the seed templates (manual input #1).  When unset, the
  /// default template set is built from the extracted field dictionary.
  void set_templates(std::vector<text::Hypothesis> templates);

  /// Provide a custom ABNF rule for names undefined after adaptation
  /// (manual input #4 feeds through to the rule adaptor).
  void set_custom_abnf(std::string_view rule_name, abnf::NodePtr definition);

  /// Analyze the given corpus documents (names resolved via hdiff::corpus).
  AnalyzerResult analyze(const std::vector<std::string_view>& doc_names) const;

 private:
  AnalyzerConfig config_;
  std::vector<text::Hypothesis> templates_;
  std::vector<std::pair<std::string, abnf::NodePtr>> custom_abnf_;
};

/// The default SR seed template set: message descriptions
/// ("[field] header is [invalid/multiple/missing/whitespace/obsolete]") and
/// role actions ("[role] [rejects/responds N/forwards/closes/...]"),
/// instantiated over `fields` and the ten RFC 7230 §2.5 role names.
std::vector<text::Hypothesis> make_default_sr_templates(
    const std::set<std::string>& fields);

/// Derive the prose-recognizable field dictionary from a grammar: rule names
/// spelled with a leading capital (header-field convention) plus core
/// message-element names.
std::set<std::string> make_field_dictionary(const abnf::Grammar& grammar);

}  // namespace hdiff::core
