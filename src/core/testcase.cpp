#include "core/testcase.h"

namespace hdiff::core {

std::string_view to_string(TestOrigin o) noexcept {
  switch (o) {
    case TestOrigin::kSrTranslator: return "sr-translator";
    case TestOrigin::kAbnfGenerator: return "abnf-generator";
    case TestOrigin::kMutation: return "mutation";
    case TestOrigin::kManual: return "manual";
  }
  return "manual";
}

std::string_view to_string(AttackClass a) noexcept {
  switch (a) {
    case AttackClass::kHrs: return "HRS";
    case AttackClass::kHot: return "HoT";
    case AttackClass::kCpdos: return "CPDoS";
    case AttackClass::kGeneric: return "generic";
  }
  return "generic";
}

}  // namespace hdiff::core
