// Verification probe set (paper §IV-A step "we further run these potential
// exploits to complete verification in a real environment").
//
// These are the concrete attack payloads of Table II, expressed as labelled
// test cases.  The pipeline discovers most of them independently through the
// SR translator and the ABNF generator; this set guarantees every Table II
// row is exercised with its exact example bytes, and carries the manually
// authored assertions for the vectors whose RFC mandate is unambiguous.
#pragma once

#include <vector>

#include "core/testcase.h"

namespace hdiff::core {

/// All Table II verification probes, one or more per row.
std::vector<TestCase> verification_probes();

}  // namespace hdiff::core
