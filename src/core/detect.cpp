#include "core/detect.h"

#include <memory>

#include "http/header_util.h"
#include "impls/products.h"

namespace hdiff::core {

namespace {

/// Strict RFC reference parser, used to attribute HRS pairs: if the
/// forwarded bytes are unambiguous to a conformant recipient, the back-end
/// misread them (back at fault); if the reference itself rejects or leaves a
/// remainder, the front-end emitted ambiguous bytes (front at fault).
const impls::HttpImplementation& reference_impl() {
  static const impls::ModelImplementation kRef = [] {
    impls::ParsePolicy p;  // defaults are the strict RFC readings
    p.name = "rfc-reference";
    p.server_mode = true;
    p.cl_te_conflict = impls::ClTeConflict::kReject400;
    return impls::ModelImplementation(p);
  }();
  return kRef;
}

std::pair<std::string, std::string> split_pair_key(const std::string& key) {
  std::size_t arrow = key.find("->");
  if (arrow == std::string::npos) return {key, ""};
  return {key.substr(0, arrow), key.substr(arrow + 2)};
}

bool hosts_differ(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return false;
  return !http::iequals(a, b);
}

}  // namespace

DetectionResult DetectionEngine::evaluate(
    const TestCase& tc, const net::ChainObservation& obs) const {
  DetectionResult result;
  // A faulted observation carries no genuine verdicts: evaluating it would
  // manufacture differentials out of harness failures.  The executor
  // quarantines such cases; this guard keeps the invariant even for direct
  // callers.
  if (obs.faulted()) return result;
  auto record_vector = [&](AttackClass attack) {
    if (!tc.vector_label.empty()) {
      result.vector_hits[tc.vector_label].insert(
          std::string(to_string(attack)));
    }
  };

  // ---- SR assertion checks (single-implementation testing) ----------------
  if (tc.assertion) {
    const Assertion& a = *tc.assertion;
    const bool constrains_servers =
        text::role_covers(a.role, text::Role::kServer) ||
        a.role == text::Role::kServer;
    const bool constrains_proxies =
        text::role_covers(a.role, text::Role::kProxy) ||
        a.role == text::Role::kProxy || a.expect_not_forward;

    if (constrains_servers && (a.expect_reject || a.expect_status)) {
      for (const auto& [name, verdict] : obs.direct) {
        if (verdict.accepted() || verdict.incomplete) {
          SrViolation v;
          v.impl = name;
          v.sr_id = a.sr_id;
          v.uuid = tc.uuid;
          v.category = tc.category;
          v.detail = "accepted (" + std::to_string(verdict.status) +
                     ") a request the specification requires rejecting: " +
                     tc.description;
          record_vector(tc.category);
          result.violations.push_back(std::move(v));
        }
      }
    }
    if (constrains_proxies) {
      for (const auto& [name, verdict] : obs.proxies) {
        if (verdict.forwarded()) {
          SrViolation v;
          v.impl = name;
          v.sr_id = a.sr_id;
          v.uuid = tc.uuid;
          v.category = tc.category;
          v.detail =
              "forwarded a request the specification requires handling as "
              "an error: " +
              tc.description;
          record_vector(tc.category);
          result.violations.push_back(std::move(v));
        }
      }
    }
  }

  // ---- pair-level detection models ----------------------------------------
  // Precompute the CPDoS gate: does *some* back-end serve some forward of
  // this test case successfully?  (Without that, an error everywhere is not
  // a semantic gap, just a bad request.)
  bool some_backend_accepts = false;
  for (const auto& [key, verdict] : obs.replays) {
    if (verdict.accepted()) some_backend_accepts = true;
  }
  for (const auto& [name, verdict] : obs.direct) {
    if (verdict.accepted()) some_backend_accepts = true;
  }

  for (const auto& [key, verdict] : obs.replays) {
    auto [front, back] = split_pair_key(key);
    auto proxy_it = obs.proxies.find(front);
    if (proxy_it == obs.proxies.end() || !proxy_it->second.forwarded()) {
      continue;
    }
    const impls::ProxyVerdict& proxy = proxy_it->second;

    // HRS: back-end derives a different message boundary from the bytes the
    // front-end framed as exactly one request.
    if (verdict.accepted() && !verdict.leftover.empty()) {
      PairFinding f;
      f.front = front;
      f.back = back;
      f.attack = AttackClass::kHrs;
      f.uuid = tc.uuid;
      f.detail = "back-end leaves " + std::to_string(verdict.leftover.size()) +
                 " smuggled byte(s) after the forwarded request (" +
                 tc.description + ")";
      record_vector(AttackClass::kHrs);
      result.pairs.push_back(std::move(f));
    } else if (verdict.incomplete) {
      PairFinding f;
      f.front = front;
      f.back = back;
      f.attack = AttackClass::kHrs;
      f.uuid = tc.uuid;
      f.detail = "back-end blocks awaiting more bytes than the front-end "
                 "sent — request desynchronization (" +
                 tc.description + ")";
      record_vector(AttackClass::kHrs);
      result.pairs.push_back(std::move(f));
    }

    // HoT: routing host disagreement between front and back.  Both sides
    // must actually derive a host — a request that merely *loses* its Host
    // on the way (hop-by-hop stripping) is a CPDoS/routing-loss vector, not
    // an ambiguous-interpretation one.
    if (verdict.accepted() && !proxy.host.empty() && !verdict.host.empty() &&
        hosts_differ(proxy.host, verdict.host)) {
      PairFinding f;
      f.front = front;
      f.back = back;
      f.attack = AttackClass::kHot;
      f.uuid = tc.uuid;
      f.detail = "front routed on '" + proxy.host + "' but back-end derives '" +
                 verdict.host + "' (" + tc.description + ")";
      record_vector(AttackClass::kHot);
      result.pairs.push_back(std::move(f));
    }

    // HRS (response path): the proxy mistakes the back-end's interim
    // response for the final one and strands the real response on the
    // back-end connection — the next client on this reused connection is
    // answered with the stranded bytes.
    if (auto relay_it = obs.relays.find(key); relay_it != obs.relays.end()) {
      const impls::RelayOutcome& relay = relay_it->second;
      if (relay.desync) {
        PairFinding f;
        f.front = front;
        f.back = back;
        f.attack = AttackClass::kHrs;
        f.uuid = tc.uuid;
        f.detail = "proxy relays the interim response as final; " +
                   std::to_string(relay.stale_backend_bytes.size()) +
                   " response byte(s) stranded on the back-end connection (" +
                   tc.description + ")";
        f.blame = Blame::kFront;  // mishandling interims is the proxy's bug
        record_vector(AttackClass::kHrs);
        result.pairs.push_back(std::move(f));
      }
    }

    // CPDoS: the cached entry for this key becomes an error page while some
    // other back-end serves the request fine.
    if (proxy.would_cache && verdict.status >= 400 && some_backend_accepts) {
      PairFinding f;
      f.front = front;
      f.back = back;
      f.attack = AttackClass::kCpdos;
      f.uuid = tc.uuid;
      f.detail = "error " + std::to_string(verdict.status) +
                 " cached under key '" + proxy.cache_key + "' (" +
                 tc.description + ")";
      record_vector(AttackClass::kCpdos);
      result.pairs.push_back(std::move(f));
    }
  }

  // ---- plain discrepancy counting over direct verdicts --------------------
  {
    bool status_diff = false, host_diff = false, body_diff = false;
    const impls::ServerVerdict* first = nullptr;
    for (const auto& [name, verdict] : obs.direct) {
      if (!first) {
        first = &verdict;
        continue;
      }
      if (verdict.status / 100 != first->status / 100) status_diff = true;
      if (verdict.accepted() && first->accepted() &&
          hosts_differ(verdict.host, first->host)) {
        host_diff = true;
      }
      if (verdict.accepted() && first->accepted() &&
          verdict.body != first->body) {
        body_diff = true;
      }
    }
    if (status_diff) ++result.discrepancies.status_disagreements;
    if (host_diff) ++result.discrepancies.host_disagreements;
    if (body_diff) ++result.discrepancies.body_disagreements;
    if (status_diff || host_diff || body_diff) {
      ++result.discrepancies.inputs_with_discrepancy;
    }
  }
  return result;
}

void DetectionEngine::accumulate(DetectionResult& total,
                                 const DetectionResult& delta) {
  auto has_violation = [&](const SrViolation& v) {
    for (const auto& existing : total.violations) {
      if (existing.impl == v.impl && existing.sr_id == v.sr_id &&
          existing.detail == v.detail) {
        return true;
      }
    }
    return false;
  };
  for (const auto& v : delta.violations) {
    if (!has_violation(v)) total.violations.push_back(v);
  }
  auto has_pair = [&](const PairFinding& p) {
    for (const auto& existing : total.pairs) {
      if (existing.front == p.front && existing.back == p.back &&
          existing.attack == p.attack) {
        return true;
      }
    }
    return false;
  };
  for (const auto& p : delta.pairs) {
    if (!has_pair(p)) total.pairs.push_back(p);
  }
  total.discrepancies.status_disagreements +=
      delta.discrepancies.status_disagreements;
  total.discrepancies.host_disagreements +=
      delta.discrepancies.host_disagreements;
  total.discrepancies.body_disagreements +=
      delta.discrepancies.body_disagreements;
  total.discrepancies.inputs_with_discrepancy +=
      delta.discrepancies.inputs_with_discrepancy;
  for (const auto& [label, attacks] : delta.vector_hits) {
    total.vector_hits[label].insert(attacks.begin(), attacks.end());
  }
}

VulnMatrix build_matrix(const DetectionResult& total,
                        const std::vector<TestCase>& cases) {
  VulnMatrix matrix;
  for (auto name : impls::product_names()) {
    matrix.by_impl.emplace(std::string(name), VulnMatrix::Row{});
  }

  // Index test cases for pair attribution.
  std::map<std::string, const TestCase*> by_uuid;
  for (const auto& tc : cases) by_uuid.emplace(tc.uuid, &tc);

  // HRS from specification violations in framing categories.
  for (const auto& v : total.violations) {
    auto it = matrix.by_impl.find(v.impl);
    if (it == matrix.by_impl.end()) continue;
    if (v.category == AttackClass::kHrs) it->second.hrs = true;
  }

  for (const auto& p : total.pairs) {
    const std::string key = p.front + "->" + p.back;
    switch (p.attack) {
      case AttackClass::kHrs: {
        matrix.hrs_pairs.insert(key);
        if (p.blame == Blame::kFront || p.blame == Blame::kBack) {
          auto it = matrix.by_impl.find(p.blame == Blame::kFront ? p.front
                                                                 : p.back);
          if (it != matrix.by_impl.end()) it->second.hrs = true;
          break;
        }
        // Attribute fault via the strict reference parser over the actual
        // forwarded bytes for this finding's test case.
        auto tc_it = by_uuid.find(p.uuid);
        bool front_at_fault = true;
        if (tc_it != by_uuid.end()) {
          auto front_impl = impls::make_implementation(p.front);
          if (front_impl) {
            impls::ProxyVerdict pv =
                front_impl->forward_request(tc_it->second->raw);
            if (pv.forwarded()) {
              impls::ServerVerdict ref =
                  reference_impl().parse_request(pv.forwarded_bytes);
              front_at_fault =
                  !ref.accepted() || !ref.leftover.empty() || ref.incomplete;
            }
          }
        }
        auto it = matrix.by_impl.find(front_at_fault ? p.front : p.back);
        if (it != matrix.by_impl.end()) it->second.hrs = true;
        break;
      }
      case AttackClass::kHot:
        matrix.hot_pairs.insert(key);
        if (auto it = matrix.by_impl.find(p.front); it != matrix.by_impl.end()) {
          it->second.hot = true;
        }
        if (auto it = matrix.by_impl.find(p.back); it != matrix.by_impl.end()) {
          it->second.hot = true;
        }
        break;
      case AttackClass::kCpdos:
        matrix.cpdos_pairs.insert(key);
        if (auto it = matrix.by_impl.find(p.front); it != matrix.by_impl.end()) {
          it->second.cpdos = true;
        }
        break;
      case AttackClass::kGeneric:
        break;
    }
  }

  // Table II catalogue, accumulated at evaluation time.
  matrix.vector_catalogue = total.vector_hits;
  return matrix;
}

}  // namespace hdiff::core
