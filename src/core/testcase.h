// Test cases and the assertions attached to SR-derived ones.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "text/entailment.h"

namespace hdiff::core {

/// Which generator produced a test case.
enum class TestOrigin {
  kSrTranslator,   ///< derived from a converted SR, carries an assertion
  kAbnfGenerator,  ///< derived from the ABNF grammar (valid seed)
  kMutation,       ///< a mutated valid seed
  kManual,         ///< hand-written probe
};

std::string_view to_string(TestOrigin o) noexcept;

/// Attack class a test case or finding belongs to (paper §II-C).
enum class AttackClass {
  kHrs,     ///< HTTP Request Smuggling
  kHot,     ///< Host of Troubles
  kCpdos,   ///< Cache-Poisoned Denial of Service
  kGeneric, ///< undirected probe; class decided by the detection models
};

std::string_view to_string(AttackClass a) noexcept;

/// Expected behaviour of a conforming implementation, derived from a
/// role-action SR.  Violating the assertion marks the implementation as
/// deviating from the specification (paper: HDiff "can test a single
/// implementation by checking whether HMetrics matches the assertion").
struct Assertion {
  text::Role role = text::Role::kServer;  ///< constrained role
  std::optional<int> expect_status;       ///< exact status required
  bool expect_reject = false;             ///< any 4xx/5xx acceptable
  bool expect_not_forward = false;        ///< proxies must not forward as-is
  std::string sr_id;                      ///< source SR identifier
};

struct TestCase {
  std::string uuid;
  std::string raw;           ///< wire bytes sent by the client
  std::string description;   ///< human-readable synopsis
  std::string vector_label;  ///< Table-II row this case probes (may be empty)
  TestOrigin origin = TestOrigin::kManual;
  AttackClass category = AttackClass::kGeneric;
  std::optional<Assertion> assertion;
};

}  // namespace hdiff::core
