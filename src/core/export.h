// Findings export (paper §V "Cost and Benefit": "we can reuse the test
// cases for discovering vulnerabilities in more implementations. And the
// tool can be run periodically").
//
// Serializes a pipeline run — statistics, the vulnerability matrix, pairs,
// violations, and optionally the full test corpus — to JSON, so a CI job can
// diff runs across software updates, and a saved corpus can be replayed.
#pragma once

#include <string>
#include <vector>

#include "core/hdiff.h"

namespace hdiff::core {

struct ExportOptions {
  bool include_test_cases = false;  ///< embed the executed corpus (large)
  bool include_pair_details = true;
  /// Pre-rendered JSON object for the "lint" block (analysis::lint_json).
  /// Rendered by the caller because core does not depend on hdiff_analysis;
  /// empty = omit the block.
  std::string lint_json;
};

/// Serialize a pipeline result to JSON.
std::string export_json(const PipelineResult& result,
                        ExportOptions options = {});

/// Serialize just a test-case corpus (wire bytes base-16 encoded so payloads
/// with NUL/CTL bytes survive any transport).
std::string export_test_cases_json(const std::vector<TestCase>& cases);

/// Parse a corpus produced by export_test_cases_json back into test cases.
/// Returns false on malformed input (partial results are discarded).
bool import_test_cases_json(std::string_view json,
                            std::vector<TestCase>* out);

/// Hex helpers used by the corpus round-trip.
std::string hex_encode(std::string_view bytes);
bool hex_decode(std::string_view hex, std::string* out);

}  // namespace hdiff::core
