#include "core/specwire.h"

#include <sstream>

#include "core/export.h"

namespace hdiff::core {

// Empty strings hex-encode to zero bytes, which would vanish under
// space-tokenization; "-" marks them explicitly.
std::string field_enc(std::string_view s) {
  return s.empty() ? std::string("-") : hex_encode(s);
}

bool field_dec(std::string_view token, std::string* out) {
  if (token == "-") {
    out->clear();
    return true;
  }
  return hex_decode(token, out);
}

std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::string serialize_spec(const http::RequestSpec& spec) {
  std::string out = "spec-v1\n";
  out += "method=" + field_enc(spec.method) + "\n";
  out += "target=" + field_enc(spec.target) + "\n";
  out += "version=" + field_enc(spec.version) + "\n";
  out += "sep1=" + field_enc(spec.sep1) + "\n";
  out += "sep2=" + field_enc(spec.sep2) + "\n";
  out += "eol=" + field_enc(spec.line_terminator) + "\n";
  out += "end=" + field_enc(spec.headers_terminator) + "\n";
  out += "body=" + field_enc(spec.body) + "\n";
  for (const auto& h : spec.headers) {
    out += "h=" + field_enc(h.name) + " " + field_enc(h.value) + " " + field_enc(h.separator) +
           " " + field_enc(h.terminator) + "\n";
  }
  return out;
}

bool deserialize_spec(std::string_view text, http::RequestSpec* out) {
  *out = http::RequestSpec{};
  out->headers.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "spec-v1") return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = line.substr(0, eq);
    const std::string rest = line.substr(eq + 1);
    if (key == "h") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 4) return false;
      http::HeaderSpec h;
      if (!field_dec(tokens[0], &h.name) || !field_dec(tokens[1], &h.value) ||
          !field_dec(tokens[2], &h.separator) || !field_dec(tokens[3], &h.terminator))
        return false;
      out->headers.push_back(std::move(h));
      continue;
    }
    std::string* field = nullptr;
    if (key == "method") field = &out->method;
    else if (key == "target") field = &out->target;
    else if (key == "version") field = &out->version;
    else if (key == "sep1") field = &out->sep1;
    else if (key == "sep2") field = &out->sep2;
    else if (key == "eol") field = &out->line_terminator;
    else if (key == "end") field = &out->headers_terminator;
    else if (key == "body") field = &out->body;
    else return false;
    if (!field_dec(rest, field)) return false;
  }
  return true;
}

}  // namespace hdiff::core
