#include "core/rules.h"

#include "http/header_util.h"

namespace hdiff::core {

void CustomRuleEngine::add(PairRule rule) {
  pair_rules_.push_back(std::move(rule));
}

void CustomRuleEngine::add(DirectRule rule) {
  direct_rules_.push_back(std::move(rule));
}

std::vector<RuleMatch> CustomRuleEngine::evaluate(
    const TestCase& tc, const net::ChainObservation& obs) const {
  std::vector<RuleMatch> out;

  // Project proxies once.
  std::map<std::string, HMetrics> fronts;
  for (const auto& [name, verdict] : obs.proxies) {
    fronts.emplace(name, from_verdict(tc.uuid, verdict));
  }

  for (const auto& [key, verdict] : obs.replays) {
    std::size_t arrow = key.find("->");
    if (arrow == std::string::npos) continue;
    std::string front = key.substr(0, arrow);
    std::string back = key.substr(arrow + 2);
    auto front_it = fronts.find(front);
    if (front_it == fronts.end() || !front_it->second.forwarded) continue;
    HMetrics back_metrics =
        from_verdict(tc.uuid, verdict, Stage::kReplay, front);
    auto relay_it = obs.relays.find(key);
    PairMetrics pm{front_it->second, back_metrics,
                   relay_it == obs.relays.end() ? nullptr
                                                : &relay_it->second};
    for (const auto& rule : pair_rules_) {
      std::string detail = rule.predicate(pm);
      if (!detail.empty()) {
        out.push_back(RuleMatch{rule.name, front, back, rule.attack, tc.uuid,
                                std::move(detail)});
      }
    }
  }

  for (const auto& [name, verdict] : obs.direct) {
    HMetrics m = from_verdict(tc.uuid, verdict, Stage::kDirect);
    for (const auto& rule : direct_rules_) {
      std::string detail = rule.predicate(m);
      if (!detail.empty()) {
        out.push_back(
            RuleMatch{rule.name, "", name, rule.attack, tc.uuid,
                      std::move(detail)});
      }
    }
  }
  return out;
}

CustomRuleEngine make_builtin_rules() {
  CustomRuleEngine engine;

  engine.add(PairRule{
      "hrs-smuggled-remainder", AttackClass::kHrs,
      [](const PairMetrics& pm) -> std::string {
        if (pm.back.ok() && !pm.back.leftover.empty()) {
          return "back-end leaves " + std::to_string(pm.back.leftover.size()) +
                 " byte(s) beyond the forwarded request";
        }
        return {};
      }});

  engine.add(PairRule{
      "hrs-desync-hang", AttackClass::kHrs,
      [](const PairMetrics& pm) -> std::string {
        if (pm.back.incomplete) {
          return "back-end blocks awaiting bytes the front never framed";
        }
        return {};
      }});

  engine.add(PairRule{
      "hot-host-disagreement", AttackClass::kHot,
      [](const PairMetrics& pm) -> std::string {
        if (pm.back.ok() && !pm.front.host.empty() && !pm.back.host.empty() &&
            !http::iequals(pm.front.host, pm.back.host)) {
          return "front routes on '" + pm.front.host + "', back derives '" +
                 pm.back.host + "'";
        }
        return {};
      }});

  engine.add(PairRule{
      "hrs-response-desync", AttackClass::kHrs,
      [](const PairMetrics& pm) -> std::string {
        if (pm.relay && pm.relay->desync) {
          return "interim response relayed as final; real response stranded";
        }
        return {};
      }});

  engine.add(PairRule{
      "cpdos-cached-error", AttackClass::kCpdos,
      [](const PairMetrics& pm) -> std::string {
        if (pm.front.would_cache && pm.back.status_code >= 400) {
          return "error " + std::to_string(pm.back.status_code) +
                 " would be cached";
        }
        return {};
      }});

  return engine;
}

}  // namespace hdiff::core
