// ABNF-driven test-case generation (paper §III-D "ABNF Generator").
//
// The generator locates target rules (HTTP-version, Host, request-target,
// Transfer-Encoding, ...) in the adapted grammar and enumerates bounded
// derivations of each, embedding every derived value into an otherwise
// canonical request.  Predefined leaf values keep the seeds RFC-compliant
// ("requests that are fully RFC compliant and not rejected by the server"),
// and the mutation engine then perturbs the seeds to reach corner cases.
#pragma once

#include <string>
#include <vector>

#include "abnf/generator.h"
#include "core/testcase.h"
#include "http/serialize.h"

namespace hdiff::core {

struct AbnfGenConfig {
  std::size_t values_per_target = 64;  ///< enumeration budget per rule
  bool include_mutations = true;
  std::size_t mutants_per_seed = 24;
  std::size_t mutation_seed_stride = 7;  ///< mutate every Nth seed
};

/// One generation target: a grammar rule embedded at a request position.
enum class EmbedPosition {
  kHostHeader,       ///< value of the Host header
  kRequestTarget,    ///< request-line target
  kHttpVersion,      ///< request-line version token
  kTransferEncoding, ///< value of the Transfer-Encoding header
  kContentLength,    ///< value of the Content-Length header
  kMethod,           ///< request-line method token
  kFieldLine,        ///< a whole extra header line (header-field rule)
  kChunkedBody,      ///< body of a TE:chunked POST (chunked-body rule)
};

std::string_view to_string(EmbedPosition p) noexcept;

struct AbnfTarget {
  std::string rule;        ///< grammar rule to derive from
  EmbedPosition position;
};

/// The default target set for the HTTP experiments.
std::vector<AbnfTarget> default_abnf_targets();

/// Embed one derived value into an otherwise canonical request at the given
/// position (the seed construction `generate()` uses for every test case;
/// analysis::MutationCoverage reuses it to measure operator applicability).
http::RequestSpec embed_value(EmbedPosition position,
                              const std::string& value);

class AbnfTestGen {
 public:
  AbnfTestGen(const abnf::Grammar& grammar, AbnfGenConfig config = {});

  /// Generate test cases for the given targets (default set when empty).
  std::vector<TestCase> generate(
      const std::vector<AbnfTarget>& targets = {}) const;

  const abnf::Generator& generator() const { return generator_; }

 private:
  abnf::Generator generator_;
  AbnfGenConfig config_;
};

}  // namespace hdiff::core
