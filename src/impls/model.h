// The behaviour-model engine.
//
// `ModelImplementation` interprets a ParsePolicy over raw request bytes and
// produces ServerVerdict / ProxyVerdict.  All ten product models share this
// engine; they differ only in policy values (products.h).  That design
// mirrors the reality HDiff probes: every HTTP stack implements the same
// specification, and the vulnerabilities live entirely in the
// discretionary/deviant corners that ParsePolicy parameterizes.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "impls/policy.h"
#include "impls/verdict.h"

namespace hdiff::impls {

/// Abstract interface differential testing consumes.
class HttpImplementation {
 public:
  virtual ~HttpImplementation() = default;

  virtual const ParsePolicy& policy() const noexcept = 0;

  std::string_view name() const noexcept { return policy().name; }
  bool is_server() const noexcept { return policy().server_mode; }
  bool is_proxy() const noexcept { return policy().proxy_mode; }

  /// Interpret `raw` as a back-end server would.
  virtual ServerVerdict parse_request(std::string_view raw) const = 0;

  /// Interpret `raw` as a reverse proxy would: either reject, or produce the
  /// exact bytes forwarded downstream.  Only meaningful when is_proxy().
  virtual ProxyVerdict forward_request(std::string_view raw) const = 0;

  /// Produce the full response byte stream a server would emit for `raw`,
  /// including an interim "100 Continue" when the request carries an
  /// accepted Expect: 100-continue and the model emits interims.
  virtual std::string respond(std::string_view raw) const = 0;

  /// Relay a back-end response stream to the client, applying this proxy's
  /// interim-response understanding.  `request_method` drives the framing
  /// (HEAD responses carry no body).
  virtual RelayOutcome relay_response(std::string_view backend_bytes,
                                      http::Method request_method) const = 0;
};

/// Pass-through decorator base: forwards every entry point to a wrapped
/// implementation.  Derive from this to intercept a subset of the calls
/// (e.g. net::FaultyImplementation injects harness faults before
/// delegating).  Non-owning: `inner` must outlive the decorator.
class ImplementationDecorator : public HttpImplementation {
 public:
  explicit ImplementationDecorator(const HttpImplementation& inner)
      : inner_(inner) {}

  const ParsePolicy& policy() const noexcept override {
    return inner_.policy();
  }
  ServerVerdict parse_request(std::string_view raw) const override {
    return inner_.parse_request(raw);
  }
  ProxyVerdict forward_request(std::string_view raw) const override {
    return inner_.forward_request(raw);
  }
  std::string respond(std::string_view raw) const override {
    return inner_.respond(raw);
  }
  RelayOutcome relay_response(std::string_view backend_bytes,
                              http::Method request_method) const override {
    return inner_.relay_response(backend_bytes, request_method);
  }

  const HttpImplementation& inner() const noexcept { return inner_; }

 protected:
  const HttpImplementation& inner_;
};

/// Policy-driven implementation of both roles.
class ModelImplementation final : public HttpImplementation {
 public:
  explicit ModelImplementation(ParsePolicy policy);

  const ParsePolicy& policy() const noexcept override { return policy_; }
  ServerVerdict parse_request(std::string_view raw) const override;
  ProxyVerdict forward_request(std::string_view raw) const override;
  std::string respond(std::string_view raw) const override;
  RelayOutcome relay_response(std::string_view backend_bytes,
                              http::Method request_method) const override;

 private:
  ParsePolicy policy_;
};

}  // namespace hdiff::impls
