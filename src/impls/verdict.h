// Observable outcomes of one implementation processing one raw request.
//
// These are the per-stage observations that difference analysis folds into
// the HMetrics vector (core/hmetrics.h): what status the implementation
// would answer, which host it routed on, which bytes it framed as the body,
// and — crucially for smuggling — which bytes it left on the connection as
// the *next* request.
#pragma once

#include <string>

#include "http/message.h"

namespace hdiff::impls {

/// How the implementation decided the body length.
enum class BodyFraming {
  kNone,           ///< no body (no CL/TE, or body ignored)
  kContentLength,
  kChunked,
  kUntilClose,     ///< HTTP/1.0-style read-to-EOF
  kNotApplicable,  ///< message rejected before framing
};

std::string_view to_string(BodyFraming f) noexcept;

/// Back-end (server-mode) outcome.
struct ServerVerdict {
  std::string impl;       ///< implementation name
  int status = 0;         ///< 2xx accepted; 4xx/5xx rejected
  bool incomplete = false;///< parser would block waiting for more bytes
  BodyFraming framing = BodyFraming::kNone;
  std::string host;       ///< interpreted target host ("" = none)
  std::string body;       ///< bytes consumed as this request's body
  std::string leftover;   ///< bytes treated as the start of the next request
  http::Version version{1, 1};  ///< version the implementation inferred
  bool close_connection = false;
  std::string reason;     ///< human-readable diagnostic

  bool accepted() const noexcept { return status >= 200 && status < 300; }
};

/// Outcome of a proxy relaying a back-end response stream to the client.
struct RelayOutcome {
  std::string to_client;           ///< bytes the client receives
  std::string stale_backend_bytes; ///< response bytes stranded on the
                                   ///< back-end connection (desync fuel)
  bool desync = false;             ///< a response was stranded
  int relayed_status = 0;          ///< status code of the relayed response
};

/// Front-end (proxy-mode) outcome.
struct ProxyVerdict {
  std::string impl;
  int status = 0;            ///< 0 == forwarded; else the rejection status
  std::string forwarded_bytes;  ///< the exact bytes sent downstream
  std::string host;          ///< host the proxy routed on
  std::string body;          ///< body as framed by the proxy
  std::string leftover;      ///< bytes the proxy treats as a next request
  bool incomplete = false;
  bool would_cache = false;  ///< response (incl. errors, per experiment
                             ///< config) would be stored under cache_key
  std::string cache_key;     ///< "host + target" caching identity
  std::string reason;

  bool forwarded() const noexcept { return status == 0; }
};

}  // namespace hdiff::impls
