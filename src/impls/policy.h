// Behaviour-model configuration for HTTP implementations.
//
// Every dial in ParsePolicy corresponds to a *documented divergence point*
// between real HTTP stacks — the places where RFC 7230 either demands one
// behaviour that some products relax, or leaves recipients discretion that
// products exercise differently.  A product model is (mostly) a ParsePolicy
// value; the shared engine in model.h interprets it.  The specific values
// assigned to the ten products in products.cpp encode the findings of the
// paper's Table I/II and the associated CVE write-ups.
#pragma once

#include <cstdint>
#include <string>

#include "http/chunked.h"
#include "http/uri.h"

namespace hdiff::impls {

/// What to do with a header whose field-name has whitespace before the
/// colon ("Content-Length : 10") — RFC 7230 §3.2.4 mandates 400.
enum class WsBeforeColon {
  kReject400,    ///< RFC-conformant
  kIgnoreHeader, ///< keep the message, treat the header as unknown garbage
  kStripAndUse,  ///< trim the name and honour the header (IIS-style laxness)
};

/// What to do with a header line that has no colon at all.
enum class GarbageLine {
  kReject400,
  kIgnoreLine,
  kJoinPrevious,  ///< treat as a continuation of the previous field value
};

/// Handling of obsolete line folding in requests (RFC 7230 §3.2.4: reject
/// with 400 or unfold to SP).
enum class ObsFold {
  kReject400,
  kUnfoldToSp,   ///< RFC-sanctioned alternative
  kForwardAsIs,  ///< proxies that neither reject nor unfold (gap source)
};

/// Duplicate Content-Length headers (or a list value "10, 10").
enum class DuplicateCl {
  kReject400,       ///< RFC-conformant for differing values
  kMergeIfIdentical,///< RFC-sanctioned: collapse identical duplicates
  kTakeFirst,
  kTakeLast,
};

/// How a Content-Length *value* is parsed.
enum class ClValueParse {
  kStrict,        ///< 1*DIGIT only
  kLenientScan,   ///< strtol-style: leading ws/'+', stop at first non-digit
  kFirstListItem, ///< "6, 9" => 6 (then lenient scan)
};

/// How the Transfer-Encoding value is matched against "chunked".
enum class TeValueParse {
  kStrictTokenList,  ///< exact token list; last coding must be "chunked"
  kTrimControls,     ///< strip CTL bytes (\v, \f, ...) then match (Tomcat-style)
  kContainsChunked,  ///< any appearance of "chunked" in the value counts
};

/// What happens when both Content-Length and Transfer-Encoding are present
/// and the TE value is *recognized*.
enum class ClTeConflict {
  kTeWins,     ///< RFC 7230 §3.3.3 precedence
  kReject400,  ///< "ought to be handled as an error" hard-line reading
  kClWins,     ///< non-conformant (gap source)
};

/// Handling of an unparseable HTTP-version token on the request line.
enum class VersionHandling {
  kReject400,
  kAcceptAsIs,          ///< treat like 1.1 and continue
  kCaseInsensitiveOnly, ///< accept "hTTP/1.1" but reject real garbage
};

/// What a proxy emits for the request line when forwarding.
enum class VersionForwarding {
  kRewriteToOwn,       ///< RFC: intermediaries send their own version
  kBlindForward,       ///< copy the incoming line verbatim (Haproxy/0.9 gap)
  kAppendOwnKeepBad,   ///< "GET / 1.1/HTTP" -> "GET / 1.1/HTTP HTTP/1.0"
                       ///< (the Nginx/Squid/ATS repair bug)
};

/// Where the target host comes from when the request-target is an
/// absolute-URI (RFC 7230 §5.4: the URI wins and proxies must rewrite).
enum class AbsUriHostPolicy {
  kUriWinsRewrite,      ///< RFC-conformant: use URI host, regenerate Host
  kUriWinsHttpOnly,     ///< rewrite for http(s) schemes, forward other
                        ///< schemes untouched (Varnish gap)
  kHostHeaderWins,      ///< route on the Host header, keep line untouched
};

/// Validation applied to the Host header value.
enum class HostValidation {
  kStrict,   ///< RFC 3986 authority; 400 on anything else
  kLoose,    ///< reject only embedded whitespace / empty
  kNone,     ///< anything goes
};

/// How a GET/HEAD with a body ("fat" request) is treated.
enum class FatGet {
  kParseBody,   ///< frame per CL/TE like any message (RFC reading)
  kIgnoreBody,  ///< treat body bytes as the next pipelined request
  kReject400,
};

/// Expect: 100-continue appearing in a bodyless GET.
enum class ExpectInGet {
  kIgnore,       ///< process normally, drop the expectation
  kReject417,    ///< Lighttpd-style refusal
  kForwardAsIs,  ///< proxies forwarding the expectation blindly (ATS gap)
};

/// Full behaviour model for one implementation.
struct ParsePolicy {
  std::string name;         ///< product name, e.g. "varnish"
  std::string version;      ///< modelled release, e.g. "6.5.1"
  bool server_mode = false; ///< appears as back-end in Table I
  bool proxy_mode = false;  ///< appears as front-end in Table I

  // --- header-block syntax tolerance --------------------------------------
  WsBeforeColon ws_before_colon = WsBeforeColon::kReject400;
  GarbageLine garbage_line = GarbageLine::kIgnoreLine;
  ObsFold obs_fold = ObsFold::kReject400;
  bool reject_bare_lf = false;       ///< refuse LF-only line endings
  bool reject_nul_byte = true;
  bool reject_ctl_in_value = false;
  bool reject_leading_header_ws = true;  ///< ws between start-line and headers
  /// Strip CTL/whitespace from the *name* before matching known headers
  /// ("\x0bTransfer-Encoding" recognized as TE).
  bool lenient_header_name_trim = false;
  /// Reject (400) header lines whose field-name is not a token, instead of
  /// ignoring the line (strict stacks: Apache HttpProtocolOptions Strict,
  /// nginx).  Ignored when lenient_header_name_trim recognizes the name.
  bool reject_malformed_header_name = false;
  std::size_t max_header_bytes = 8192;   ///< HHO CPDoS lever

  // --- request line --------------------------------------------------------
  VersionHandling version_handling = VersionHandling::kReject400;
  bool accept_http09 = false;        ///< 2-token request line accepted
  bool accept_http09_with_headers = false;  ///< 0.9 line yet header block read
  bool accept_version_10 = true;
  bool accept_version_2x = false;    ///< "HTTP/2.0" on a 1.x connection
  bool tolerate_extra_request_ws = true;
  /// Reject request lines with more than three whitespace-separated parts
  /// (e.g. the "GET / 1.1/HTTP HTTP/1.1" shape produced by repair bugs).
  bool reject_request_line_parts = true;

  // --- body framing ---------------------------------------------------------
  DuplicateCl duplicate_cl = DuplicateCl::kReject400;
  ClValueParse cl_value_parse = ClValueParse::kStrict;
  TeValueParse te_value_parse = TeValueParse::kStrictTokenList;
  ClTeConflict cl_te_conflict = ClTeConflict::kTeWins;
  /// Unknown/unrecognized transfer coding: 501 per RFC 7230 §3.3.1 (true),
  /// or silently ignore the TE header and fall back to CL/none (false —
  /// the lenient behaviour that opens TE-mangling smuggling gaps).
  bool te_unknown_is_error = true;
  bool te_honored_in_http10 = true;  ///< false => TE ignored for 1.0 requests
  bool reject_te_identity = true;    ///< "chunked, identity" is obsolete
  bool duplicate_te_reject = true;   ///< two TE headers => 400
  FatGet fat_get = FatGet::kParseBody;
  http::ChunkPolicy chunk;

  // --- host resolution -------------------------------------------------------
  http::HostExtraction host_extraction = http::HostExtraction::kStrict;
  HostValidation host_validation = HostValidation::kStrict;
  bool reject_missing_host = true;       ///< HTTP/1.1 without Host => 400
  /// Reject absolute-form targets whose scheme is not http/https (servers
  /// that refuse to serve schemes they do not implement).
  bool reject_non_http_scheme = false;
  bool reject_multiple_host = true;
  bool multiple_host_take_last = false;  ///< when not rejecting
  AbsUriHostPolicy abs_uri_host = AbsUriHostPolicy::kUriWinsRewrite;

  // --- misc semantics ---------------------------------------------------------
  ExpectInGet expect_in_get = ExpectInGet::kIgnore;
  /// Server side: answer an accepted Expect: 100-continue with an interim
  /// "HTTP/1.1 100 Continue" before the final response.
  bool emits_100_continue = true;
  /// Proxy side: recognize 1xx responses as interim and keep reading for
  /// the final response.  When false, the interim is relayed as if it were
  /// the final response and the real response strands on the back-end
  /// connection — response desynchronization (the Expect HRS variant).
  bool understands_interim_responses = true;

  // --- proxy-only behaviour ----------------------------------------------------
  VersionForwarding version_forwarding = VersionForwarding::kRewriteToOwn;
  /// Strip headers named in Connection (hop-by-hop).  When
  /// `connection_strip_protects_critical` is false, even Host/Cookie named in
  /// Connection are removed (the Table II hop-by-hop CPDoS vector).
  bool strip_connection_listed = true;
  bool connection_strip_protects_critical = true;
  /// Re-emit chunked bodies as Content-Length downstream (common proxy
  /// normalization; surfaces size-repair bugs).
  bool dechunk_downstream = false;
  /// Normalize header spelling when forwarding (rebuild "Name: value");
  /// false => copy original header lines byte-for-byte.
  bool normalize_headers_on_forward = true;
  /// Cache responses (experiment config caches even non-200, per §IV-A).
  bool cache_enabled = false;
};

}  // namespace hdiff::impls
