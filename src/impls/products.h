// The ten modelled HTTP products (paper Table I).
//
// Each factory returns the ParsePolicy encoding that product's documented
// parsing behaviour at the modelled version — RFC-conformant where the
// product conforms, and deviating exactly where the paper (and the
// associated CVEs) report a deviation.  products.cpp documents every
// non-default dial with the finding it reproduces.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "impls/model.h"

namespace hdiff::impls {

ParsePolicy iis_policy();        ///< IIS 10                (server)
ParsePolicy tomcat_policy();     ///< Tomcat 9.0.29         (server)
ParsePolicy weblogic_policy();   ///< Weblogic 12.2.1.4.0   (server)
ParsePolicy lighttpd_policy();   ///< Lighttpd 1.4.58       (server)
ParsePolicy apache_policy();     ///< Apache httpd 2.4.47   (server+proxy)
ParsePolicy nginx_policy();      ///< Nginx 1.21.0          (server+proxy)
ParsePolicy varnish_policy();    ///< Varnish 6.5.1         (proxy)
ParsePolicy squid_policy();      ///< Squid 5.0.6           (proxy)
ParsePolicy haproxy_policy();    ///< Haproxy 2.4.0         (proxy)
ParsePolicy ats_policy();        ///< Apache Traffic Server 8.0.5 (proxy)

/// All ten implementations, in Table I order.
std::vector<std::unique_ptr<HttpImplementation>> make_all_implementations();

/// One implementation by product name ("iis", "tomcat", ...); nullptr if
/// unknown.  Lookup is case-insensitive.
std::unique_ptr<HttpImplementation> make_implementation(std::string_view name);

/// The names of all modelled products, in Table I order.
std::vector<std::string_view> product_names();

}  // namespace hdiff::impls
