#include "impls/model.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>

#include "http/header_util.h"
#include "http/lexer.h"
#include "http/response.h"
#include "http/uri.h"

namespace hdiff::impls {

std::string_view to_string(BodyFraming f) noexcept {
  switch (f) {
    case BodyFraming::kNone: return "none";
    case BodyFraming::kContentLength: return "content-length";
    case BodyFraming::kChunked: return "chunked";
    case BodyFraming::kUntilClose: return "until-close";
    case BodyFraming::kNotApplicable: return "n/a";
  }
  return "n/a";
}

namespace {

using http::Anomaly;
using http::RawHeader;
using http::RawRequest;

/// A header after policy-driven name normalization and usability filtering.
struct EffHeader {
  std::string name;   ///< recognition name: lower-case, possibly trimmed
  std::string value;
  const RawHeader* raw = nullptr;
  bool usable = true;   ///< participates in semantics (framing, Host, ...)
  bool garbage = false; ///< no-colon line kept only for verbatim forwarding
};

/// Strip CTL and whitespace bytes from a header name (lenient recognizers).
std::string trim_name_lenient(std::string_view name) {
  std::string out;
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) continue;
    out.push_back(c);
  }
  return http::to_lower(out);
}

/// Everything the engine derives from one raw request under one policy.
struct Analysis {
  RawRequest req;
  int status = 200;            ///< rejection code, or 200
  bool incomplete = false;
  std::string reason;

  http::Version version{1, 1};
  bool version_malformed = false;
  bool is_http09 = false;

  http::RequestTarget target;

  std::vector<EffHeader> headers;

  std::string host;
  bool host_from_uri = false;

  BodyFraming framing = BodyFraming::kNone;
  std::string body;      ///< decoded body bytes
  std::string raw_body;  ///< wire bytes consumed as the body (framing intact)
  std::string leftover;
  bool chunk_size_overflowed = false;
  std::uint64_t first_chunk_size = 0;

  bool expect_100 = false;   ///< usable Expect: 100-continue present
  bool close_connection = false;

  void reject(int code, std::string why) {
    if (status == 200) {
      status = code;
      reason = std::move(why);
    }
  }
};

std::vector<const EffHeader*> find_headers(const Analysis& a,
                                           std::string_view name) {
  std::vector<const EffHeader*> out;
  for (const auto& h : a.headers) {
    if (h.usable && h.name == name) out.push_back(&h);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stage 1: request line
// ---------------------------------------------------------------------------

void analyze_request_line(Analysis& a, const ParsePolicy& p) {
  const auto& line = a.req.line;

  if (line.method_token.empty()) {
    a.reject(400, "unparseable request line");
    return;
  }
  if (!p.tolerate_extra_request_ws &&
      http::has_anomaly(line.anomalies, Anomaly::kExtraRequestLineWs)) {
    a.reject(400, "non-canonical whitespace in request line");
    return;
  }
  if (http::has_anomaly(line.anomalies, Anomaly::kRequestLineParts)) {
    if (line.version_token.empty() || p.reject_request_line_parts) {
      a.reject(400, "request line does not have three parts");
      return;
    }
    // Lenient parsers take the last token as the version and fold the rest
    // into the target; processing continues below.
  }

  if (http::has_anomaly(line.anomalies, Anomaly::kNoVersion)) {
    // HTTP/0.9 simple request.
    if (!p.accept_http09) {
      a.reject(400, "HTTP/0.9 request form not supported");
      return;
    }
    if (!a.req.headers.empty() && !p.accept_http09_with_headers) {
      a.reject(400, "header fields present on HTTP/0.9 request");
      return;
    }
    a.is_http09 = true;
    a.version = http::kHttp09;
  } else if (auto v = line.strict_version()) {
    a.version = *v;
    if (a.version.major == 0) {
      if (!p.accept_http09) {
        a.reject(505, "HTTP/0.x version not supported");
        return;
      }
      a.is_http09 = true;
    } else if (a.version.major >= 2) {
      if (!p.accept_version_2x) {
        a.reject(505, "major version above 1 on a 1.x connection");
        return;
      }
      a.version = http::kHttp11;  // processed as 1.1 semantics
    } else if (a.version == http::kHttp10 && !p.accept_version_10) {
      a.reject(505, "HTTP/1.0 not supported");
      return;
    }
  } else {
    // Malformed version token.
    a.version_malformed = true;
    switch (p.version_handling) {
      case VersionHandling::kReject400:
        a.reject(400, "malformed HTTP-version '" + line.version_token + "'");
        return;
      case VersionHandling::kCaseInsensitiveOnly: {
        std::string upper = line.version_token;
        for (char& c : upper) c = static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)));
        http::RequestLine retry = line;
        retry.version_token = upper;
        if (auto rv = retry.strict_version()) {
          a.version = *rv;
          a.version_malformed = false;  // recovered
        } else {
          a.reject(400, "malformed HTTP-version '" + line.version_token + "'");
          return;
        }
        break;
      }
      case VersionHandling::kAcceptAsIs:
        a.version = http::kHttp11;  // treated as current version
        break;
    }
  }

  a.target = http::parse_request_target(line.target);
}

// ---------------------------------------------------------------------------
// Stage 2: header block
// ---------------------------------------------------------------------------

void analyze_headers(Analysis& a, const ParsePolicy& p) {
  std::size_t total_bytes = a.req.line.raw.size();

  for (const auto& raw : a.req.headers) {
    total_bytes += raw.raw_line.size() + 2;
    EffHeader eff;
    eff.raw = &raw;
    eff.value = raw.value;

    if (http::has_anomaly(raw.anomalies, Anomaly::kNulByte) &&
        p.reject_nul_byte) {
      a.reject(400, "NUL byte in header block");
      return;
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kBareLf) &&
        p.reject_bare_lf) {
      a.reject(400, "bare LF line terminator");
      return;
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kCtlInValue) &&
        p.reject_ctl_in_value) {
      a.reject(400, "control character in field value");
      return;
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kLeadingHeaderWs)) {
      if (p.reject_leading_header_ws) {
        a.reject(400, "whitespace between start-line and first header");
        return;
      }
      eff.usable = false;  // consumed without processing (RFC alternative)
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kMissingColon)) {
      switch (p.garbage_line) {
        case GarbageLine::kReject400:
          a.reject(400, "header line without colon");
          return;
        case GarbageLine::kIgnoreLine:
          eff.usable = false;
          eff.garbage = true;
          break;
        case GarbageLine::kJoinPrevious:
          if (!a.headers.empty()) {
            EffHeader& prev = a.headers.back();
            if (!prev.value.empty()) prev.value += ' ';
            prev.value += std::string(http::trim_ows(raw.raw_line));
            continue;
          }
          eff.usable = false;
          eff.garbage = true;
          break;
      }
      eff.name = http::to_lower(raw.name);
      a.headers.push_back(std::move(eff));
      continue;
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kWsBeforeColon)) {
      switch (p.ws_before_colon) {
        case WsBeforeColon::kReject400:
          a.reject(400, "whitespace between field-name and colon");
          return;
        case WsBeforeColon::kIgnoreHeader:
          eff.usable = false;
          eff.name = http::to_lower(raw.name);
          a.headers.push_back(std::move(eff));
          continue;
        case WsBeforeColon::kStripAndUse:
          break;  // fall through to name normalization below
      }
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kObsFold)) {
      switch (p.obs_fold) {
        case ObsFold::kReject400:
          a.reject(400, "obsolete line folding");
          return;
        case ObsFold::kUnfoldToSp:
        case ObsFold::kForwardAsIs:
          break;  // lexer already joined with SP
      }
    }
    if (http::has_anomaly(raw.anomalies, Anomaly::kNonTokenName) ||
        http::has_anomaly(raw.anomalies, Anomaly::kWsInFieldName)) {
      if (p.lenient_header_name_trim) {
        eff.name = trim_name_lenient(raw.name);
      } else if (p.reject_malformed_header_name) {
        a.reject(400, "malformed header field-name");
        return;
      } else {
        eff.usable = false;
        eff.name = http::to_lower(raw.name);
        a.headers.push_back(std::move(eff));
        continue;
      }
    } else {
      eff.name = raw.normalized_name();
    }
    a.headers.push_back(std::move(eff));
  }

  if (total_bytes > p.max_header_bytes) {
    a.reject(431, "header block exceeds size limit");
  }
}

// ---------------------------------------------------------------------------
// Stage 3: host resolution
// ---------------------------------------------------------------------------

bool host_value_acceptable(std::string_view value, HostValidation level) {
  switch (level) {
    case HostValidation::kStrict: {
      http::Authority auth = http::parse_authority(http::trim_ows(value));
      return auth.valid && auth.userinfo.empty();
    }
    case HostValidation::kLoose: {
      std::string_view v = http::trim_ows(value);
      if (v.empty()) return false;
      for (char c : v) {
        unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7F) return false;  // CTL bytes only
      }
      return true;
    }
    case HostValidation::kNone:
      return true;
  }
  return false;
}

void analyze_host(Analysis& a, const ParsePolicy& p) {
  if (p.reject_non_http_scheme &&
      a.target.form == http::TargetForm::kAbsolute &&
      a.target.scheme != "http" && a.target.scheme != "https") {
    a.reject(400, "unsupported scheme '" + a.target.scheme + "'");
    return;
  }
  auto hosts = find_headers(a, "host");

  if (hosts.size() > 1) {
    if (p.reject_multiple_host) {
      a.reject(400, "multiple Host header fields");
      return;
    }
  }
  std::optional<std::string> header_value;
  if (!hosts.empty()) {
    header_value = p.multiple_host_take_last ? hosts.back()->value
                                             : hosts.front()->value;
  }

  // Absolute-URI in the request line can override the header.
  std::optional<std::string> uri_host;
  if (a.target.form == http::TargetForm::kAbsolute &&
      !a.target.authority.host.empty()) {
    bool uri_wins = false;
    switch (p.abs_uri_host) {
      case AbsUriHostPolicy::kUriWinsRewrite:
        uri_wins = true;
        break;
      case AbsUriHostPolicy::kUriWinsHttpOnly:
        uri_wins = a.target.scheme == "http" || a.target.scheme == "https";
        break;
      case AbsUriHostPolicy::kHostHeaderWins:
        uri_wins = false;
        break;
    }
    if (uri_wins) uri_host = a.target.authority.host;
  }

  if (uri_host) {
    a.host = *uri_host;
    a.host_from_uri = true;
    return;
  }
  if (header_value) {
    if (!host_value_acceptable(*header_value, p.host_validation)) {
      a.reject(400, "invalid Host header field-value");
      return;
    }
    a.host = http::extract_host(*header_value, p.host_extraction);
    return;
  }
  // No host at all.
  if (a.version >= http::kHttp11 && !a.is_http09 && p.reject_missing_host) {
    a.reject(400, "HTTP/1.1 request lacks a Host header field");
  }
}

// ---------------------------------------------------------------------------
// Stage 4: body framing
// ---------------------------------------------------------------------------

/// Parse one Content-Length header value under the policy; nullopt=invalid.
std::optional<std::uint64_t> parse_cl(std::string_view value,
                                      const ParsePolicy& p) {
  switch (p.cl_value_parse) {
    case ClValueParse::kStrict:
      return http::parse_content_length_strict(http::trim_ows(value));
    case ClValueParse::kLenientScan:
      return http::parse_content_length_lenient(value);
    case ClValueParse::kFirstListItem: {
      std::string_view v = http::trim_ows(value);
      std::size_t comma = v.find(',');
      if (comma != std::string_view::npos) v = v.substr(0, comma);
      return http::parse_content_length_lenient(v);
    }
  }
  return std::nullopt;
}

/// TE classification result.
enum class TeKind { kAbsent, kChunked, kIdentityObsolete, kUnknown, kInvalid };

TeKind classify_te(const std::vector<const EffHeader*>& tes,
                   const ParsePolicy& p, Analysis& a) {
  if (tes.empty()) return TeKind::kAbsent;
  if (tes.size() > 1 && p.duplicate_te_reject) {
    a.reject(400, "multiple Transfer-Encoding header fields");
    return TeKind::kInvalid;
  }
  std::string value;
  for (const auto* h : tes) {
    if (!value.empty()) value += ", ";
    value += h->value;
  }
  switch (p.te_value_parse) {
    case TeValueParse::kStrictTokenList: {
      auto items = http::split_list(value);
      if (items.empty()) return TeKind::kUnknown;
      bool identity = false;
      for (const auto& item : items) {
        if (http::iequals(item, "identity")) identity = true;
      }
      if (identity && p.reject_te_identity) return TeKind::kIdentityObsolete;
      const std::string& last = items.back();
      if (http::iequals(last, "identity") && !p.reject_te_identity &&
          items.size() >= 2 && http::iequals(items[items.size() - 2], "chunked")) {
        return TeKind::kChunked;  // "chunked, identity" tolerated
      }
      if (http::iequals(last, "chunked")) {
        // Token must be exact: embedded controls make it non-chunked.
        if (http::is_token(last)) return TeKind::kChunked;
        return TeKind::kUnknown;
      }
      return TeKind::kUnknown;
    }
    case TeValueParse::kTrimControls: {
      std::string cleaned;
      for (char c : value) {
        unsigned char u = static_cast<unsigned char>(c);
        if (u <= 0x20 || u == 0x7F) continue;
        cleaned.push_back(c);
      }
      auto items = http::split_list(cleaned);
      if (!items.empty() && http::iequals(items.back(), "chunked")) {
        return TeKind::kChunked;
      }
      bool identity = false;
      for (const auto& item : items) {
        if (http::iequals(item, "identity")) identity = true;
      }
      if (identity && p.reject_te_identity) return TeKind::kIdentityObsolete;
      return TeKind::kUnknown;
    }
    case TeValueParse::kContainsChunked: {
      std::string lower = http::to_lower(value);
      if (lower.find("chunked") != std::string::npos) return TeKind::kChunked;
      return TeKind::kUnknown;
    }
  }
  return TeKind::kUnknown;
}

void analyze_framing(Analysis& a, const ParsePolicy& p) {
  const std::string& payload = a.req.after_headers;
  a.leftover = payload;  // default: no body, everything is the next request

  if (a.is_http09) {
    a.framing = BodyFraming::kNone;
    return;
  }

  auto cls = find_headers(a, "content-length");
  auto tes = find_headers(a, "transfer-encoding");

  TeKind te = classify_te(tes, p, a);
  if (a.status != 200) return;

  if (te == TeKind::kIdentityObsolete) {
    a.reject(400, "obsolete 'identity' transfer coding");
    return;
  }
  if (te == TeKind::kUnknown) {
    if (p.te_unknown_is_error) {
      a.reject(501, "transfer coding not implemented");
      return;
    }
    te = TeKind::kAbsent;  // lenient stacks silently ignore the TE header
  }
  if (te == TeKind::kChunked && a.version < http::kHttp11 &&
      !p.te_honored_in_http10) {
    te = TeKind::kAbsent;  // chunked not supported pre-1.1: header ignored
  }

  // Content-Length resolution (also validates even when TE will win, per
  // strict policies that reject the conflicting combination).
  std::optional<std::uint64_t> content_length;
  if (!cls.empty()) {
    std::vector<std::uint64_t> values;
    for (const auto* h : cls) {
      // A single header may itself carry a list ("10, 10").
      std::string_view v = http::trim_ows(h->value);
      if (p.cl_value_parse == ClValueParse::kStrict &&
          v.find(',') != std::string_view::npos) {
        auto items = http::split_list(v);
        for (const auto& item : items) {
          auto n = http::parse_content_length_strict(item);
          if (!n) {
            a.reject(400, "invalid Content-Length value");
            return;
          }
          values.push_back(*n);
        }
        continue;
      }
      auto n = parse_cl(h->value, p);
      if (!n) {
        a.reject(400, "invalid Content-Length value");
        return;
      }
      values.push_back(*n);
    }
    if (values.size() > 1) {
      bool all_equal = std::all_of(values.begin(), values.end(),
                                   [&](std::uint64_t v) { return v == values[0]; });
      switch (p.duplicate_cl) {
        case DuplicateCl::kReject400:
          if (!all_equal) {
            a.reject(400, "conflicting Content-Length values");
            return;
          }
          // RFC permits collapsing identical duplicates... strictest stacks
          // still refuse; model the sanctioned collapse here.
          content_length = values[0];
          break;
        case DuplicateCl::kMergeIfIdentical:
          if (!all_equal) {
            a.reject(400, "conflicting Content-Length values");
            return;
          }
          content_length = values[0];
          break;
        case DuplicateCl::kTakeFirst:
          content_length = values.front();
          break;
        case DuplicateCl::kTakeLast:
          content_length = values.back();
          break;
      }
    } else {
      content_length = values[0];
    }
  }

  bool use_chunked = false;
  if (te == TeKind::kChunked && content_length) {
    switch (p.cl_te_conflict) {
      case ClTeConflict::kReject400:
        a.reject(400, "both Content-Length and Transfer-Encoding present");
        return;
      case ClTeConflict::kTeWins:
        use_chunked = true;
        break;
      case ClTeConflict::kClWins:
        use_chunked = false;
        break;
    }
  } else if (te == TeKind::kChunked) {
    use_chunked = true;
  }

  // Fat GET/HEAD: body on a method with no body semantics.
  const http::Method method = http::method_from_token(a.req.line.method_token);
  const bool bodyless_method =
      method == http::Method::kGet || method == http::Method::kHead;
  if (bodyless_method && (use_chunked || content_length)) {
    switch (p.fat_get) {
      case FatGet::kReject400:
        a.reject(400, "message body not allowed on GET/HEAD");
        return;
      case FatGet::kIgnoreBody:
        a.framing = BodyFraming::kNone;
        a.leftover = payload;
        return;
      case FatGet::kParseBody:
        break;
    }
  }

  if (use_chunked) {
    http::ChunkResult r = http::decode_chunked(payload, p.chunk);
    a.framing = BodyFraming::kChunked;
    if (!r.chunk_sizes.empty()) a.first_chunk_size = r.chunk_sizes.front();
    a.chunk_size_overflowed = r.size_overflowed;
    if (r.incomplete) {
      a.incomplete = true;
      a.reason = r.error;
      a.body = r.body;
      a.leftover.clear();
      return;
    }
    if (!r.ok) {
      a.reject(400, "chunked framing error: " + r.error);
      return;
    }
    a.body = r.body;
    a.leftover = r.leftover;
    a.raw_body = payload.substr(0, payload.size() - r.leftover.size());
    return;
  }
  if (content_length) {
    a.framing = BodyFraming::kContentLength;
    if (payload.size() < *content_length) {
      a.incomplete = true;
      a.reason = "awaiting full Content-Length body";
      a.body = payload;
      a.leftover.clear();
      return;
    }
    a.body = payload.substr(0, static_cast<std::size_t>(*content_length));
    a.raw_body = a.body;
    a.leftover = payload.substr(static_cast<std::size_t>(*content_length));
    return;
  }
  a.framing = BodyFraming::kNone;
}

// ---------------------------------------------------------------------------
// Stage 5: semantic extras (Expect, Connection)
// ---------------------------------------------------------------------------

void analyze_semantics(Analysis& a, const ParsePolicy& p) {
  auto expects = find_headers(a, "expect");
  if (!expects.empty()) {
    const std::string value(http::trim_ows(expects.front()->value));
    const bool is_100 = http::iequals(value, "100-continue");
    const http::Method method =
        http::method_from_token(a.req.line.method_token);
    const bool bodyless =
        (method == http::Method::kGet || method == http::Method::kHead) &&
        a.framing == BodyFraming::kNone;
    if (!is_100) {
      // Unknown expectation: RFC 7231 allows 417.
      if (p.expect_in_get == ExpectInGet::kReject417) {
        a.reject(417, "unsupported expectation '" + value + "'");
        return;
      }
    } else if (bodyless) {
      switch (p.expect_in_get) {
        case ExpectInGet::kReject417:
          a.reject(417, "100-continue expectation on bodyless GET");
          return;
        case ExpectInGet::kIgnore:
        case ExpectInGet::kForwardAsIs:
          break;
      }
    }
    a.expect_100 = is_100;
  }

  auto conns = find_headers(a, "connection");
  for (const auto* conn : conns) {
    for (const auto& opt : http::split_list(conn->value)) {
      if (http::iequals(opt, "close")) a.close_connection = true;
    }
  }
}

Analysis analyze(std::string_view raw, const ParsePolicy& p) {
  Analysis a;
  a.req = http::lex_request(raw);
  if (http::has_anomaly(a.req.anomalies, Anomaly::kTruncatedHeaders)) {
    a.incomplete = true;
    a.status = 200;
    a.reason = "awaiting end of header block";
    return a;
  }
  analyze_request_line(a, p);
  if (a.status == 200) analyze_headers(a, p);
  if (a.status == 200) analyze_host(a, p);
  if (a.status == 200) analyze_framing(a, p);
  if (a.status == 200 && !a.incomplete) analyze_semantics(a, p);
  return a;
}

// ---------------------------------------------------------------------------
// Forwarding reconstruction (proxy mode)
// ---------------------------------------------------------------------------

const char* kHopByHop[] = {"connection",       "keep-alive",
                           "proxy-connection", "upgrade",
                           "te",               "trailer"};

bool is_hop_by_hop(std::string_view name) {
  for (const char* h : kHopByHop) {
    if (name == h) return true;
  }
  return false;
}

/// Build the forwarded request line and report whether the absolute-form
/// target was rewritten to origin-form.
std::string build_forward_line(const Analysis& a, const ParsePolicy& p,
                               bool* rewrote_to_origin) {
  const auto& line = a.req.line;
  std::string target = line.target;
  *rewrote_to_origin = false;
  if (a.target.form == http::TargetForm::kAbsolute) {
    bool rewrite = false;
    switch (p.abs_uri_host) {
      case AbsUriHostPolicy::kUriWinsRewrite:
        rewrite = true;
        break;
      case AbsUriHostPolicy::kUriWinsHttpOnly:
        rewrite = a.target.scheme == "http" || a.target.scheme == "https";
        break;
      case AbsUriHostPolicy::kHostHeaderWins:
        rewrite = false;
        break;
    }
    if (rewrite) {
      target = a.target.path.empty() ? "/" : a.target.path;
      if (!a.target.query.empty()) target += "?" + a.target.query;
      *rewrote_to_origin = true;
    }
  }

  std::string out;
  out += line.method_token;
  out += ' ';
  switch (p.version_forwarding) {
    case VersionForwarding::kRewriteToOwn:
      out += target;
      out += " HTTP/1.1";
      break;
    case VersionForwarding::kBlindForward:
      out += target;
      if (!line.version_token.empty()) {
        out += ' ';
        out += line.version_token;
      }
      break;
    case VersionForwarding::kAppendOwnKeepBad:
      out += target;
      if (a.version_malformed && !line.version_token.empty()) {
        // The repair bug: the bad token is left in place and the proxy's own
        // version is appended after it.
        out += ' ';
        out += line.version_token;
      }
      out += " HTTP/1.1";
      break;
  }
  out += "\r\n";
  return out;
}

/// Emit the body bytes for a forwarding proxy that kept chunked framing.
void emit_forward_chunked_body(const Analysis& a, std::string& out) {
  if (a.chunk_size_overflowed) {
    // The chunk-repair bug (paper §IV-B "Bad chunk-size value"): the proxy
    // re-emits the *wrapped* size value while sending only the bytes it
    // actually consumed — downstream framing no longer matches.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(a.first_chunk_size));
    out += buf;
    out += "\r\n";
    out += a.body;
    out += "\r\n0\r\n\r\n";
  } else {
    out += http::encode_chunked(a.body);
  }
}

/// Byte-transparent forwarding: original header lines are copied verbatim
/// (minus hop-by-hop), and the body is the raw consumed bytes.  This is the
/// mode in which ambiguous CL/TE constructions survive the proxy — the
/// primary pair-level smuggling primitive.
std::string rebuild_forwarded_transparent(const Analysis& a,
                                          const ParsePolicy& p) {
  bool rewrote_to_origin = false;
  std::string out = build_forward_line(a, p, &rewrote_to_origin);

  std::vector<std::string> connection_listed;
  if (p.strip_connection_listed) {
    for (const auto& h : a.headers) {
      if (h.usable && h.name == "connection") {
        for (const auto& opt : http::split_list(h.value)) {
          std::string lower = http::to_lower(opt);
          if (p.connection_strip_protects_critical &&
              (lower == "host" || lower == "cookie")) {
            continue;
          }
          connection_listed.push_back(std::move(lower));
        }
      }
    }
  }
  auto listed = [&](std::string_view name) {
    return std::find(connection_listed.begin(), connection_listed.end(),
                     name) != connection_listed.end();
  };

  for (const auto& h : a.headers) {
    if (h.usable && (is_hop_by_hop(h.name) || listed(h.name))) continue;
    if (h.usable && h.name == "host" && rewrote_to_origin) continue;
    if (h.raw) {
      out += h.raw->raw_line;
      out += "\r\n";
    }
  }
  if (rewrote_to_origin) {
    std::string host = a.target.authority.host;
    if (!a.target.authority.port.empty()) host += ":" + a.target.authority.port;
    out += "Host: " + host + "\r\n";
  }
  out += "Via: 1.1 " + p.name + "\r\n";
  out += "\r\n";

  if (a.framing == BodyFraming::kChunked && a.chunk_size_overflowed) {
    emit_forward_chunked_body(a, out);  // repair bug applies even here
  } else {
    out += a.raw_body;
  }
  return out;
}

std::string rebuild_forwarded(const Analysis& a, const ParsePolicy& p) {
  if (!p.normalize_headers_on_forward) {
    return rebuild_forwarded_transparent(a, p);
  }
  bool rewrote_to_origin = false;
  std::string out = build_forward_line(a, p, &rewrote_to_origin);

  // ---- collect Connection-listed names to strip ---------------------------
  std::vector<std::string> connection_listed;
  if (p.strip_connection_listed) {
    for (const auto& h : a.headers) {
      if (h.usable && h.name == "connection") {
        for (const auto& opt : http::split_list(h.value)) {
          std::string lower = http::to_lower(opt);
          if (p.connection_strip_protects_critical &&
              (lower == "host" || lower == "cookie")) {
            continue;
          }
          connection_listed.push_back(std::move(lower));
        }
      }
    }
  }
  auto is_connection_listed = [&](std::string_view name) {
    return std::find(connection_listed.begin(), connection_listed.end(),
                     name) != connection_listed.end();
  };

  // ---- headers --------------------------------------------------------------
  const bool body_chunked = a.framing == BodyFraming::kChunked;
  const bool emit_cl_for_chunked = body_chunked && p.dechunk_downstream;
  bool wrote_host = false;

  for (const auto& h : a.headers) {
    if (h.garbage) {
      if (!p.normalize_headers_on_forward && h.raw) {
        out += h.raw->raw_line;
        out += "\r\n";
      }
      continue;
    }
    if (!h.usable) {
      if (!p.normalize_headers_on_forward && h.raw) {
        out += h.raw->raw_line;
        out += "\r\n";
      }
      continue;
    }
    if (is_hop_by_hop(h.name) || is_connection_listed(h.name)) continue;
    if (h.name == "transfer-encoding") {
      if (emit_cl_for_chunked) continue;     // replaced by Content-Length
      if (body_chunked) {
        out += "Transfer-Encoding: chunked\r\n";
        continue;
      }
      // TE was ignored by this proxy's framing: forward as-is only in
      // byte-transparent mode.
      if (!p.normalize_headers_on_forward && h.raw) {
        out += h.raw->raw_line;
        out += "\r\n";
      }
      continue;
    }
    if (h.name == "content-length") {
      // Re-framed below from the proxy's own body interpretation.
      continue;
    }
    if (h.name == "expect") {
      if (p.expect_in_get == ExpectInGet::kForwardAsIs) {
        out += h.raw ? h.raw->raw_line : ("Expect: " + h.value);
        out += "\r\n";
      }
      // RFC-following proxies handle/drop the expectation themselves when
      // the request has no body.
      continue;
    }
    if (h.name == "host") {
      if (rewrote_to_origin) {
        // Regenerated from the URI below.
        continue;
      }
      wrote_host = true;
      if (p.normalize_headers_on_forward) {
        out += "Host: " + h.value + "\r\n";
      } else if (h.raw) {
        out += h.raw->raw_line;
        out += "\r\n";
      }
      continue;
    }
    if (p.normalize_headers_on_forward) {
      // Canonical spelling, preserving the original casing of the name core.
      std::string name = h.raw ? std::string(http::trim_lenient_ws(h.raw->name))
                               : h.name;
      out += name + ": " + h.value + "\r\n";
    } else if (h.raw) {
      out += h.raw->raw_line;
      out += "\r\n";
    }
  }

  if (rewrote_to_origin) {
    std::string host = a.target.authority.host;
    if (!a.target.authority.port.empty()) host += ":" + a.target.authority.port;
    out += "Host: " + host + "\r\n";
  } else if (!wrote_host && find_headers(a, "host").empty() &&
             !a.host.empty()) {
    // Host derived without a Host header (e.g. authority-form targets):
    // materialize it.  A header stripped via Connection-listing is *not*
    // regenerated — that is the hop-by-hop CPDoS vector.
    out += "Host: " + a.host + "\r\n";
  }

  // Body framing headers.
  if (body_chunked && !emit_cl_for_chunked) {
    // Transfer-Encoding already written above (or absent if the TE header was
    // unusable — re-add it so the downstream framing matches).
    if (out.find("Transfer-Encoding:") == std::string::npos) {
      out += "Transfer-Encoding: chunked\r\n";
    }
  } else if (a.framing == BodyFraming::kContentLength || emit_cl_for_chunked) {
    out += "Content-Length: " + std::to_string(a.body.size()) + "\r\n";
  }

  out += "Via: 1.1 " + p.name + "\r\n";
  out += "\r\n";

  // ---- body ----------------------------------------------------------------
  if (body_chunked && !emit_cl_for_chunked) {
    emit_forward_chunked_body(a, out);
  } else {
    out += a.body;
  }
  return out;
}

}  // namespace

ModelImplementation::ModelImplementation(ParsePolicy policy)
    : policy_(std::move(policy)) {}

ServerVerdict ModelImplementation::parse_request(std::string_view raw) const {
  Analysis a = analyze(raw, policy_);
  ServerVerdict v;
  v.impl = policy_.name;
  v.status = a.incomplete ? 0 : a.status;
  v.incomplete = a.incomplete;
  v.framing = a.status == 200 ? a.framing : BodyFraming::kNotApplicable;
  v.host = a.host;
  v.body = a.body;
  v.leftover = a.leftover;
  v.version = a.version;
  v.close_connection = a.close_connection || a.status >= 400;
  v.reason = a.reason;
  return v;
}

std::string ModelImplementation::respond(std::string_view raw) const {
  Analysis a = analyze(raw, policy_);
  std::string out;
  if (a.status == 200 && !a.incomplete && a.expect_100 &&
      policy_.emits_100_continue) {
    out += "HTTP/1.1 100 Continue\r\n\r\n";
  }
  int status = a.incomplete ? 408 : a.status;
  std::string extra = "X-HDiff-Impl: " + policy_.name + "\r\n";
  out += http::build_response(status, a.body, extra);
  return out;
}

RelayOutcome ModelImplementation::relay_response(
    std::string_view backend_bytes, http::Method request_method) const {
  RelayOutcome out;
  http::FramedResponse first =
      http::frame_first_response(backend_bytes, request_method);
  if (!first.head.status_line_valid() || !first.complete) {
    // Unparseable or partial: relay the raw bytes as-is.
    out.to_client.assign(backend_bytes);
    out.relayed_status = first.head.status;
    return out;
  }
  if (first.interim && policy_.understands_interim_responses) {
    // Skip interim responses and relay the final one.
    std::string leftover = first.leftover;
    http::FramedResponse final_response =
        http::frame_first_response(leftover, request_method);
    while (final_response.complete && final_response.interim) {
      leftover = final_response.leftover;
      final_response = http::frame_first_response(leftover, request_method);
    }
    out.to_client = leftover.substr(
        0, leftover.size() - final_response.leftover.size());
    if (out.to_client.empty()) out.to_client = leftover;
    out.relayed_status = final_response.head.status;
    out.stale_backend_bytes = final_response.leftover;
    return out;
  }
  // Either a normal final response, or an interim this proxy does NOT
  // recognize as interim: relay exactly one framed response.
  out.to_client.assign(
      backend_bytes.substr(0, backend_bytes.size() - first.leftover.size()));
  out.relayed_status = first.head.status;
  out.stale_backend_bytes = first.leftover;
  // A stranded *final* response behind a relayed interim is the
  // desynchronization primitive.
  if (first.interim && !first.leftover.empty()) out.desync = true;
  return out;
}

ProxyVerdict ModelImplementation::forward_request(std::string_view raw) const {
  ProxyVerdict v;
  v.impl = policy_.name;
  if (!policy_.proxy_mode) {
    v.status = 500;
    v.reason = "implementation does not support proxy mode";
    return v;
  }
  Analysis a = analyze(raw, policy_);
  v.host = a.host;
  v.incomplete = a.incomplete;
  if (a.incomplete) {
    v.status = 408;
    v.reason = a.reason.empty() ? "timed out awaiting request" : a.reason;
    return v;
  }
  if (a.status != 200) {
    v.status = a.status;
    v.reason = a.reason;
    return v;
  }
  v.body = a.body;
  v.leftover = a.leftover;
  v.forwarded_bytes = rebuild_forwarded(a, policy_);
  v.would_cache = policy_.cache_enabled;
  v.cache_key = a.host + "|" + a.req.line.target;
  v.reason = a.reason;
  return v;
}

}  // namespace hdiff::impls
