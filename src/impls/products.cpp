#include "impls/products.h"

#include "http/header_util.h"

namespace hdiff::impls {

namespace {

/// Shared experiment configuration: per §IV-A all proxies run in
/// reverse-proxy mode and are configured to cache any returned response,
/// including error responses.
void configure_proxy_defaults(ParsePolicy& p) {
  p.proxy_mode = true;
  p.cache_enabled = true;
}

}  // namespace

ParsePolicy iis_policy() {
  ParsePolicy p;
  p.name = "iis";
  p.version = "10";
  p.server_mode = true;

  // CVE-2020-0645 family: IIS tolerates whitespace between the field-name
  // and the colon and *honours* the header ("Content-Length : 10" frames a
  // body) — RFC 7230 §3.2.4 demands 400.  Primary HRS lever of §IV-B.
  p.ws_before_colon = WsBeforeColon::kStripAndUse;

  // Version token matching is case-insensitive ("hTTP/1.1" accepted).
  p.version_handling = VersionHandling::kCaseInsensitiveOnly;

  // Host handling: URL-parser semantics treat "h1.com@h2.com" as
  // userinfo@host and route on h2.com; the request-line absolute-URI wins
  // over the Host header (§IV-B "Bad absolute-URI vs Host").
  p.host_validation = HostValidation::kLoose;
  p.host_extraction = http::HostExtraction::kAfterAt;
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsRewrite;

  p.obs_fold = ObsFold::kUnfoldToSp;
  return p;
}

ParsePolicy tomcat_policy() {
  ParsePolicy p;
  p.name = "tomcat";
  p.version = "9.0.29";
  p.server_mode = true;

  // CVE-2019-17569 / CVE-2020-1935 family: control bytes are stripped from
  // the Transfer-Encoding value before matching, so
  // "Transfer-Encoding:\x0bchunked" is honoured as chunked while conformant
  // stacks treat the coding as unknown.
  p.te_value_parse = TeValueParse::kTrimControls;
  p.te_unknown_is_error = false;      // unrecognized codings silently ignored
  p.lenient_header_name_trim = true;  // "\x0bTransfer-Encoding" recognized

  // Tomcat does not support chunked encoding on HTTP/1.0 requests while
  // most other stacks honour it — the "HTTP version 1.0 with TE chunked"
  // HRS vector of §IV-B.
  p.te_honored_in_http10 = false;

  // Host: a comma-separated value routes on the *last* element; the
  // absolute-URI wins over the Host header.
  p.host_validation = HostValidation::kLoose;
  p.host_extraction = http::HostExtraction::kLastListItem;
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsRewrite;

  p.obs_fold = ObsFold::kUnfoldToSp;
  // Continuation-like garbage lines are folded into the previous field
  // value — the "Host: h1.com\t\nh2.com" obs-fold HoT vector of Table II.
  p.garbage_line = GarbageLine::kJoinPrevious;
  return p;
}

ParsePolicy weblogic_policy() {
  ParsePolicy p;
  p.name = "weblogic";
  p.version = "12.2.1.4.0";
  p.server_mode = true;

  // CVE-2020-2867 / CVE-2020-14588 / CVE-2020-14589 family: lenient
  // strtol-style Content-Length parsing accepts "+6" and stops at the first
  // non-digit, and the first of several Content-Length headers wins.
  p.cl_value_parse = ClValueParse::kLenientScan;
  p.duplicate_cl = DuplicateCl::kTakeFirst;

  // The only back-end that answers an HTTP/0.9-with-headers message with
  // 200 (§IV-B "Blindly forwarding lower/higher HTTP-version").
  p.accept_http09 = true;
  p.accept_http09_with_headers = true;
  p.accept_version_2x = true;
  p.version_handling = VersionHandling::kAcceptAsIs;
  p.reject_request_line_parts = false;  // garbage extra tokens tolerated

  // Host: anything is accepted; URL semantics route after '@'; duplicate
  // Host headers are tolerated (last wins); a request without Host is
  // served against the default virtual host.
  p.host_validation = HostValidation::kNone;
  p.host_extraction = http::HostExtraction::kAfterAt;
  p.reject_multiple_host = false;
  p.multiple_host_take_last = true;
  p.reject_missing_host = false;
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsRewrite;

  // Fat GET: the body is left on the connection (next-request boundary gap).
  p.fat_get = FatGet::kIgnoreBody;

  // C-string body handling: a NUL byte inside chunk-data terminates the
  // body (Table II "NULL in chunk-data" — an HRS desync primitive).
  p.chunk.nul_terminates_body = true;

  p.obs_fold = ObsFold::kUnfoldToSp;
  p.garbage_line = GarbageLine::kJoinPrevious;
  return p;
}

ParsePolicy lighttpd_policy() {
  ParsePolicy p;
  p.name = "lighttpd";
  p.version = "1.4.58";
  p.server_mode = true;

  // HRS finding: a list-valued Content-Length ("6, 9") is parsed by taking
  // the first element instead of rejecting the conflicting values.
  p.cl_value_parse = ClValueParse::kFirstListItem;

  // CPDoS pair with ATS (§IV-B "Blindly forwarding Expect header in GET
  // request"): lighttpd rejects the expectation outright.
  p.expect_in_get = ExpectInGet::kReject417;

  // Fat GET/HEAD is refused (another §IV-B CPDoS/HRS vector: some
  // implementations "directly consider this type of request to be illegal").
  p.fat_get = FatGet::kReject400;

  p.host_validation = HostValidation::kStrict;
  p.host_extraction = http::HostExtraction::kStrict;
  p.reject_non_http_scheme = true;
  p.reject_malformed_header_name = true;
  return p;
}

ParsePolicy apache_policy() {
  ParsePolicy p;
  p.name = "apache";
  p.version = "2.4.47";
  p.server_mode = true;
  configure_proxy_defaults(p);

  // Apache is the RFC-conformant baseline on message framing and host
  // parsing (no HRS/HoT mark in Table I).  Its CPDoS exposure is the
  // hop-by-hop vector of Table II: headers named in Connection are removed
  // when forwarding, *including* end-to-end criticals like Host and Cookie
  // ("Connection: close, Host").
  p.strip_connection_listed = true;
  p.connection_strip_protects_critical = false;

  p.obs_fold = ObsFold::kUnfoldToSp;
  p.reject_malformed_header_name = true;
  p.host_validation = HostValidation::kStrict;
  p.host_extraction = http::HostExtraction::kStrict;
  p.reject_non_http_scheme = true;
  p.version_forwarding = VersionForwarding::kRewriteToOwn;
  // Conflicting CL+TE is handled as an error outright (the RFC's "ought to
  // be handled as an error" reading) — no smuggling surface.
  p.cl_te_conflict = ClTeConflict::kReject400;
  return p;
}

ParsePolicy nginx_policy() {
  ParsePolicy p;
  p.name = "nginx";
  p.version = "1.21.0";
  p.server_mode = true;
  configure_proxy_defaults(p);

  // §IV-B "Invalid HTTP-version": nginx accepts a malformed version token
  // and, when forwarding, appends its own version *without deleting the
  // garbage*, producing "GET /?a=b 1.1/HTTP HTTP/1.1" downstream (CPDoS).
  p.version_handling = VersionHandling::kAcceptAsIs;
  p.version_forwarding = VersionForwarding::kAppendOwnKeepBad;

  // Host: loose acceptance and before-delimiter routing; the raw value is
  // forwarded unmodified, which makes nginx a HoT front-end against
  // back-ends with '@'/list semantics (Nginx-Weblogic in §IV-B).
  p.host_validation = HostValidation::kLoose;
  p.host_extraction = http::HostExtraction::kBeforeDelims;
  // http(s) absolute-URIs are rewritten to origin-form on forward; other
  // schemes pass through untouched while routing stays on the Host header.
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsHttpOnly;

  // Framing is conformant (no HRS mark in Table I); CL+TE conflicts are
  // rejected outright, and malformed header names are refused.
  p.cl_te_conflict = ClTeConflict::kReject400;
  p.reject_malformed_header_name = true;
  return p;
}

ParsePolicy varnish_policy() {
  ParsePolicy p;
  p.name = "varnish";
  p.version = "6.5.1";
  configure_proxy_defaults(p);

  // §IV-B "Bad absolute-URI vs Host": varnish only rewrites http(s)
  // absolute-URIs; a request-target like "test://h2.com/?a=1" is forwarded
  // transparently while routing happens on the Host header.
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsHttpOnly;

  // Invalid Host values — including duplicates — are forwarded without
  // modification.
  p.host_validation = HostValidation::kNone;
  p.host_extraction = http::HostExtraction::kBeforeDelims;
  p.reject_multiple_host = false;

  // HRS finding: the Transfer-Encoding value is matched by substring, so
  // "chunked, identity" (obsolete) and mangled values still select chunked.
  p.te_value_parse = TeValueParse::kContainsChunked;
  p.te_unknown_is_error = false;
  p.reject_te_identity = false;

  // Chunked uploads are buffered and re-emitted as Content-Length.
  p.dechunk_downstream = true;
  return p;
}

ParsePolicy squid_policy() {
  ParsePolicy p;
  p.name = "squid";
  p.version = "5.0.6";
  configure_proxy_defaults(p);

  // §IV-B "Bad chunk-size value": the chunk-size scanner accumulates into a
  // 32-bit integer (wrapping on overflow) and resynchronizes on framing
  // mismatch, then re-emits the repaired — still wrong — size downstream.
  p.chunk.wrapping_size = true;
  p.chunk.wrap_bits = 32;
  p.chunk.lenient_size_line = true;
  p.chunk.require_crlf_after_data = false;

  // §IV-B "Invalid HTTP-version": same repair bug as nginx.
  p.version_handling = VersionHandling::kAcceptAsIs;
  p.version_forwarding = VersionForwarding::kAppendOwnKeepBad;

  // Host parsing and header-name syntax are strict — no HoT mark in
  // Table I.
  p.host_validation = HostValidation::kStrict;
  p.host_extraction = http::HostExtraction::kStrict;
  p.reject_malformed_header_name = true;
  p.obs_fold = ObsFold::kUnfoldToSp;
  return p;
}

ParsePolicy haproxy_policy() {
  ParsePolicy p;
  p.name = "haproxy";
  p.version = "2.4.0";
  configure_proxy_defaults(p);

  // §IV-B "Blindly forwarding lower/higher HTTP-version": HTTP/0.9 lines —
  // even with header fields attached — and HTTP/2.0 version tokens are
  // forwarded verbatim.
  p.accept_http09 = true;
  p.accept_http09_with_headers = true;
  p.accept_version_2x = true;
  p.version_forwarding = VersionForwarding::kBlindForward;

  // http(s) absolute-URIs are rewritten; other schemes are forwarded
  // transparently, routed on the Host header (§IV-B).  Requests without a
  // Host header are forwarded rather than rejected.
  p.abs_uri_host = AbsUriHostPolicy::kUriWinsHttpOnly;
  p.reject_missing_host = false;
  p.host_validation = HostValidation::kNone;
  p.host_extraction = http::HostExtraction::kBeforeDelims;
  p.reject_multiple_host = false;

  // Unknown transfer codings are ignored rather than answered with 501,
  // the obsolete "chunked, identity" combination is tolerated, and lenient
  // strtol-style Content-Length scanning is applied.
  p.te_unknown_is_error = false;
  p.reject_te_identity = false;
  p.cl_value_parse = ClValueParse::kLenientScan;

  // Header block is forwarded byte-for-byte (transparent mode), and the
  // chunk-size scanner has the same wrap/resync repair as squid.
  p.normalize_headers_on_forward = false;
  p.chunk.wrapping_size = true;
  p.chunk.wrap_bits = 32;
  p.chunk.lenient_size_line = true;
  p.chunk.require_crlf_after_data = false;
  return p;
}

ParsePolicy ats_policy() {
  ParsePolicy p;
  p.name = "ats";
  p.version = "8.0.5";
  configure_proxy_defaults(p);

  // CVE-2020-1944: ATS forwards repeated/mangled Transfer-Encoding header
  // lines transparently.  A header with whitespace before the colon is
  // ignored for ATS's own framing but still forwarded byte-for-byte —
  // the canonical pair-level smuggling primitive against strippers (IIS).
  p.normalize_headers_on_forward = false;
  p.ws_before_colon = WsBeforeColon::kIgnoreHeader;
  p.duplicate_te_reject = false;
  p.te_unknown_is_error = false;  // mangled TE ignored for framing, forwarded
  // Line endings are strict: bare-LF requests are refused rather than
  // forwarded (keeps ATS out of the obs-fold HoT surface, per Table I).
  p.reject_bare_lf = true;

  // §IV-B "Blindly forwarding Expect header in GET request": the
  // expectation is forwarded, and the interim "100 Continue" the origin
  // then emits is mistaken for the final response — the response stream
  // desynchronizes (the Expect HRS variant of Table II).
  p.expect_in_get = ExpectInGet::kForwardAsIs;
  p.understands_interim_responses = false;

  // §IV-B "Invalid HTTP-version": repair-by-append, like nginx/squid.
  p.version_handling = VersionHandling::kAcceptAsIs;
  p.version_forwarding = VersionForwarding::kAppendOwnKeepBad;

  p.host_validation = HostValidation::kStrict;
  p.host_extraction = http::HostExtraction::kStrict;
  return p;
}

std::vector<std::unique_ptr<HttpImplementation>> make_all_implementations() {
  std::vector<std::unique_ptr<HttpImplementation>> out;
  out.push_back(std::make_unique<ModelImplementation>(iis_policy()));
  out.push_back(std::make_unique<ModelImplementation>(tomcat_policy()));
  out.push_back(std::make_unique<ModelImplementation>(weblogic_policy()));
  out.push_back(std::make_unique<ModelImplementation>(lighttpd_policy()));
  out.push_back(std::make_unique<ModelImplementation>(apache_policy()));
  out.push_back(std::make_unique<ModelImplementation>(nginx_policy()));
  out.push_back(std::make_unique<ModelImplementation>(varnish_policy()));
  out.push_back(std::make_unique<ModelImplementation>(squid_policy()));
  out.push_back(std::make_unique<ModelImplementation>(haproxy_policy()));
  out.push_back(std::make_unique<ModelImplementation>(ats_policy()));
  return out;
}

std::unique_ptr<HttpImplementation> make_implementation(std::string_view name) {
  std::string key = http::to_lower(name);
  if (key == "iis") return std::make_unique<ModelImplementation>(iis_policy());
  if (key == "tomcat") {
    return std::make_unique<ModelImplementation>(tomcat_policy());
  }
  if (key == "weblogic") {
    return std::make_unique<ModelImplementation>(weblogic_policy());
  }
  if (key == "lighttpd") {
    return std::make_unique<ModelImplementation>(lighttpd_policy());
  }
  if (key == "apache") {
    return std::make_unique<ModelImplementation>(apache_policy());
  }
  if (key == "nginx") {
    return std::make_unique<ModelImplementation>(nginx_policy());
  }
  if (key == "varnish") {
    return std::make_unique<ModelImplementation>(varnish_policy());
  }
  if (key == "squid") {
    return std::make_unique<ModelImplementation>(squid_policy());
  }
  if (key == "haproxy") {
    return std::make_unique<ModelImplementation>(haproxy_policy());
  }
  if (key == "ats") return std::make_unique<ModelImplementation>(ats_policy());
  return nullptr;
}

std::vector<std::string_view> product_names() {
  return {"iis",    "tomcat",  "weblogic", "lighttpd", "apache",
          "nginx",  "varnish", "squid",    "haproxy",  "ats"};
}

}  // namespace hdiff::impls
