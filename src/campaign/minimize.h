// Delta-debugging minimizer for interesting mutants.
//
// An interesting mutant often drags along structure that has nothing to do
// with the divergence it triggers (extra headers from the seed, a body, a
// long value around the one byte that matters).  The minimizer shrinks the
// spec while an *oracle* — "does this variant still reproduce the original
// divergence signatures?" — keeps answering yes.  The engine's oracle
// replays the candidate through the executor (jobs=1, shared observation
// memo, so repeats are cache hits) and compares signature sets.
//
// Passes, repeated to a fixed point:
//   1. header ddmin    — remove header chunks, halving chunk size (classic
//                        Zeller/Hildebrandt ddmin over the header list);
//   2. body            — drop it, else halve it;
//   3. canonicalize    — restore request-line separators, terminators, and
//                        header separators to canonical HTTP syntax;
//   4. value shrink    — halve header values (front half, then back half).
//
// Progress is measured lexicographically: (non-canonical element count,
// serialized byte size).  A candidate is accepted only when the oracle
// holds AND the measure strictly decreases, so the loop terminates: the
// measure is a well-founded order, and a full sweep with no acceptance is
// the fixed point (re-minimizing a minimized spec accepts nothing).
#pragma once

#include <cstddef>
#include <functional>

#include "http/serialize.h"

namespace hdiff::campaign {

struct MinimizeOptions {
  /// Hard cap on oracle invocations (a pathological oracle cannot stall a
  /// round); 0 = unlimited.
  std::size_t max_steps = 512;
};

struct MinimizeOutcome {
  http::RequestSpec spec;     ///< minimized spec (== input at fixed point)
  std::size_t steps = 0;      ///< oracle invocations
  std::size_t accepted = 0;   ///< candidates that shrank the measure
};

/// (non-canonical element count, serialized bytes) — the well-founded
/// measure the minimizer strictly decreases.
std::pair<std::size_t, std::size_t> spec_measure(const http::RequestSpec& s);

/// Shrink `start` while `still_interesting(candidate)` holds.  The oracle
/// must be deterministic; `start` itself is assumed interesting.
MinimizeOutcome minimize_spec(
    const http::RequestSpec& start,
    const std::function<bool(const http::RequestSpec&)>& still_interesting,
    const MinimizeOptions& options = {});

}  // namespace hdiff::campaign
