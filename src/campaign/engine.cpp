#include "campaign/engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "abnf/ast.h"
#include "campaign/fingerprint.h"
#include "campaign/scheduler.h"
#include "core/mutation.h"
#include "http/header_util.h"
#include "net/chain.h"
#include "report/json.h"
#include "stream/detect.h"
#include "stream/mutate.h"

namespace hdiff::campaign {
namespace {

/// Metric-name segment for a mutation kind ("repeat-header" -> in metric
/// names dashes become underscores, matching the pipeline's stage gauges).
std::string metric_segment(std::string_view kind) {
  std::string out;
  for (char c : kind) out += c == '-' ? '_' : c;
  return out;
}

/// All single-kind variants of a corpus entry, grouped by kind in
/// deterministic emission order.  `max_mutants` is lifted far above the
/// generation caps so the full operator surface is schedulable.
std::map<std::string, std::vector<core::Mutant>> variants_by_kind(
    const http::RequestSpec& spec, bool record_touched) {
  core::MutationOptions options;
  options.max_mutants = 4096;
  options.record_touched = record_touched;
  std::map<std::string, std::vector<core::Mutant>> grouped;
  for (auto& mutant : core::mutate(spec, options)) {
    const std::string kind(to_string(mutant.applied.front().kind));
    grouped[kind].push_back(std::move(mutant));
  }
  return grouped;
}

/// Production ids a mutant's touched rules map onto (sorted, deduplicated;
/// names outside the coverage cone are dropped).
std::vector<std::size_t> cov_ids_of(const analysis::CoveragePlan& plan,
                                    const core::Mutant& mutant) {
  std::set<std::size_t> ids;
  for (const auto& name : mutant.touched) {
    const std::size_t id = plan.id_of(abnf::normalize_rule_name(name));
    if (id != analysis::CoveragePlan::npos) ids.insert(id);
  }
  return {ids.begin(), ids.end()};
}

/// The bytes a mutation injects or rewrites — the probe the parser actually
/// sees changed.  Case variations and folds carry an empty descriptor
/// payload (their effect is a rewritten field), so the rewritten text is
/// read back out of the mutant spec instead.
std::string probe_bytes(const core::Mutant& mutant) {
  const core::AppliedMutation& m = mutant.applied.front();
  auto header_text = [&](bool name) -> std::string {
    for (const auto& h : mutant.spec.headers) {
      if (http::iequals(h.name, m.header)) return name ? h.name : h.value;
    }
    return {};
  };
  switch (m.kind) {
    case core::MutationKind::kNameCaseVariation:
      return header_text(true);
    case core::MutationKind::kValueCaseVariation:
    case core::MutationKind::kObsFoldValue:
      return header_text(false);
    case core::MutationKind::kBareLfTerminator:
      return "\n";
    default:
      return m.payload;
  }
}

/// Gap-site ids among `site_index[production]` whose overlap class the
/// mutant's probe bytes intersect (an empty probe hits nothing: the site is
/// about a concrete ambiguous byte reaching the parser).
std::vector<std::size_t> gap_ids_of(
    const analysis::CoveragePlan& plan,
    const std::map<std::size_t, std::vector<std::size_t>>& site_index,
    const std::vector<std::size_t>& cov_ids, const core::Mutant& mutant) {
  const std::string payload = probe_bytes(mutant);
  if (payload.empty()) return {};
  std::set<std::size_t> ids;
  for (std::size_t prod : cov_ids) {
    const auto it = site_index.find(prod);
    if (it == site_index.end()) continue;
    for (std::size_t site_id : it->second) {
      const analysis::GapSite& site = plan.sites[site_id];
      for (unsigned char byte : payload) {
        if (site.overlap.test(byte)) {
          ids.insert(site_id);
          break;
        }
      }
    }
  }
  return {ids.begin(), ids.end()};
}

std::string mutant_provenance(const std::string& entry_hash,
                              std::string_view kind) {
  return "mutant:" + entry_hash + ":" + std::string(kind);
}

std::string stream_mutant_provenance(const std::string& entry_hash,
                                     std::string_view kind) {
  return "stream-mutant:" + entry_hash + ":" + std::string(kind);
}

/// Stream seeds to use: config's, or the built-in defaults.  Resolved here
/// (not in the engine ctor) so config_sig, seed registration and the serve
/// worker's plan all agree without pre-normalizing the config.
const std::vector<stream::StreamSeed>& resolved_stream_seeds(
    const CampaignConfig& config) {
  return config.stream_seeds.empty() ? stream::default_stream_seeds()
                                     : config.stream_seeds;
}

/// All single-application stream mutants of an entry, grouped by kind in
/// deterministic emission order.
std::map<std::string, std::vector<stream::StreamMutant>>
stream_variants_by_kind(const stream::RequestStream& s) {
  std::map<std::string, std::vector<stream::StreamMutant>> grouped;
  for (auto& mutant : stream::stream_mutants(s)) {
    const std::string kind(to_string(mutant.applied.kind));
    grouped[kind].push_back(std::move(mutant));
  }
  return grouped;
}

/// Canonical signature-set key used by the minimizer oracle ("does the
/// candidate still reproduce every original signature?").
std::set<std::string> canonical_set(const std::vector<Signature>& sigs) {
  std::set<std::string> out;
  for (const auto& s : sigs) out.insert(s.canonical());
  return out;
}

/// Parse "mutant:<hash>:<kind>" back into an arm for replay attribution.
bool parse_mutant_provenance(const std::string& prov, std::string* hash,
                             std::string* kind) {
  if (prov.rfind("mutant:", 0) != 0) return false;
  const std::size_t colon = prov.find(':', 7);
  if (colon == std::string::npos) return false;
  *hash = prov.substr(7, colon - 7);
  *kind = prov.substr(colon + 1);
  return !hash->empty() && !kind->empty();
}

/// Same for "stream-mutant:<hash>:<kind>".
bool parse_stream_mutant_provenance(const std::string& prov, std::string* hash,
                                    std::string* kind) {
  constexpr std::size_t kPrefix = 14;  // "stream-mutant:"
  if (prov.rfind("stream-mutant:", 0) != 0) return false;
  const std::size_t colon = prov.find(':', kPrefix);
  if (colon == std::string::npos) return false;
  *hash = prov.substr(kPrefix, colon - kPrefix);
  *kind = prov.substr(colon + 1);
  return !hash->empty() && !kind->empty();
}

}  // namespace

std::vector<SeedSpec> default_campaign_seeds() {
  std::vector<SeedSpec> seeds;
  seeds.push_back({"get", http::make_get("origin.example")});
  seeds.push_back(
      {"post", http::make_post("origin.example", "/submit", "payload=1")});
  seeds.push_back(
      {"chunked", http::make_chunked_post("origin.example", "/up", "data")});
  // The classic ambiguous-framing seed: Content-Length and Transfer-Encoding
  // on the same request, the surface most HRS vectors mutate around.
  {
    http::RequestSpec te_cl = http::make_post("origin.example", "/q", "0\r\n\r\n");
    te_cl.add("Transfer-Encoding", "chunked");
    seeds.push_back({"te-cl", std::move(te_cl)});
  }
  // Absolute-form target alongside a Host header (HoT surface).
  {
    http::RequestSpec absolute = http::make_get("origin.example");
    absolute.target = "http://origin.example/";
    seeds.push_back({"absolute", std::move(absolute)});
  }
  return seeds;
}

std::string campaign_config_sig(const CampaignConfig& config) {
  std::string acc = "campaign-config-v1";
  acc += "|budget=" + std::to_string(config.budget_per_round);
  acc += "|minimize=" + std::string(config.minimize_new ? "1" : "0");
  acc += "|minsteps=" + std::to_string(config.minimize.max_steps);
  const std::vector<SeedSpec> seeds =
      config.seeds.empty() ? default_campaign_seeds() : config.seeds;
  for (const auto& s : seeds) {
    acc += "|seed:" + s.name + ":" + content_address(s.spec);
  }
  for (const auto& tc : config.bootstrap) {
    acc += "|case:" + tc.uuid + ":" + hex64(tc.raw);
  }
  // Stream fields join the preimage only when the feature is on: a campaign
  // without streams keeps the exact signature it had before the stream
  // subsystem existed, so its state dirs resume untouched.
  if (config.streams) {
    acc += "|streams=1";
    acc += "|sbudget=" + std::to_string(config.stream_budget_per_round);
    for (const auto& s : resolved_stream_seeds(config)) {
      acc += "|sseed:" + s.name + ":" + stream_content_address(s.stream);
    }
  }
  return hex64(acc);
}

void register_seed_entries(StateStore& store, const CampaignConfig& config) {
  const std::vector<SeedSpec> seeds =
      config.seeds.empty() ? default_campaign_seeds() : config.seeds;
  for (const auto& s : seeds) {
    CorpusEntry entry;
    entry.hash = content_address(s.spec);
    entry.provenance = "seed:" + s.name;
    entry.spec = s.spec;
    store.add_entry(std::move(entry));
  }
}

void register_stream_seed_entries(StateStore& store,
                                  const CampaignConfig& config) {
  if (!config.streams) return;
  for (const auto& s : resolved_stream_seeds(config)) {
    StreamEntry entry;
    entry.hash = stream_content_address(s.stream);
    entry.provenance = "stream-seed:" + s.name;
    entry.stream = s.stream;
    store.add_stream_entry(std::move(entry));
  }
}

RoundPlan plan_round(StateStore& store, const CampaignConfig& config,
                     std::size_t round) {
  RoundPlan plan;
  std::vector<PlannedCase>& planned = plan.cases;
  if (round == 0) {
    for (const auto& tc : config.bootstrap) {
      PlannedCase pc;
      pc.tc = tc;
      pc.provenance = "seed:" + std::string(to_string(tc.origin));
      planned.push_back(std::move(pc));
    }
    return plan;
  }

  // Quarantine replays first (PR-2 integration): cases the fault layer
  // starved last round get another chance before new budget is spent.
  std::vector<RetryEntry> replays = std::move(store.retry_queue);
  store.retry_queue.clear();
  for (std::size_t i = 0; i < replays.size(); ++i) {
    RetryEntry& r = replays[i];
    PlannedCase pc;
    pc.tc.uuid =
        "camp-r" + std::to_string(round) + "-retry" + std::to_string(i);
    pc.tc.raw = r.raw;
    pc.tc.description = r.description;
    pc.tc.origin = core::TestOrigin::kMutation;
    pc.provenance = r.provenance;
    pc.spec_text = r.spec_text;
    std::string hash, kind;
    if (stream::is_stream_text(r.spec_text)) {
      // A quarantined stream case: rebuild the message structure so the
      // replay goes back through observe_stream, and re-attribute its arm
      // against the stream corpus.
      pc.is_stream = stream::deserialize_stream(r.spec_text, &pc.stream);
      if (parse_stream_mutant_provenance(r.provenance, &hash, &kind)) {
        for (std::size_t e = 0; e < store.stream_entries.size(); ++e) {
          if (store.stream_entries[e].hash == hash) {
            pc.arm_entry = e;
            pc.arm_kind = kind;
            break;
          }
        }
      }
    } else {
      if (!r.spec_text.empty()) deserialize_spec(r.spec_text, &pc.spec);
      if (parse_mutant_provenance(r.provenance, &hash, &kind)) {
        for (std::size_t e = 0; e < store.entries.size(); ++e) {
          if (store.entries[e].hash == hash) {
            pc.arm_entry = e;
            pc.arm_kind = kind;
            break;
          }
        }
      }
    }
    ++plan.replayed;
    planned.push_back(std::move(pc));
  }

  // Divergence-feedback schedule over (entry x kind) arms.
  const bool cov = store.coverage_enabled();
  // site_index: production id -> gap-site ids, via each site's attribution
  // cone (a Transfer-Encoding mutation reaches the transfer-coding sites).
  std::map<std::size_t, std::vector<std::size_t>> site_index;
  if (cov) {
    for (const auto& site : store.coverage.sites) {
      for (std::size_t prod : site.related) {
        site_index[prod].push_back(site.id);
      }
    }
  }
  struct ArmPlan {
    std::size_t entry;
    std::string kind;
    std::vector<core::Mutant>* variants;
  };
  std::vector<ArmPlan> arm_plans;
  std::vector<ArmView> views;
  std::vector<std::map<std::string, std::vector<core::Mutant>>> grouped;
  grouped.reserve(store.entries.size());
  for (const auto& entry : store.entries) {
    grouped.push_back(variants_by_kind(entry.spec, cov));
  }
  for (std::size_t e = 0; e < store.entries.size(); ++e) {
    for (core::MutationKind kind : core::all_mutation_kinds()) {
      const std::string kind_name(to_string(kind));
      auto it = grouped[e].find(kind_name);
      if (it == grouped[e].end() || it->second.empty()) continue;
      const ArmStats& stats = store.arms[{e, kind_name}];
      ArmView view;
      view.attempts = stats.attempts;
      view.novel = stats.novel;
      view.capacity = it->second.size();
      if (cov && store.coverage_weighting) {
        // Static-analysis bias: productions this arm would touch that are
        // still uncovered, and unhit gap sites among those productions.
        std::set<std::size_t> touchable;
        for (const core::Mutant& m : it->second) {
          for (std::size_t id : cov_ids_of(store.coverage, m)) {
            touchable.insert(id);
          }
        }
        std::set<std::size_t> unhit_sites;
        for (std::size_t id : touchable) {
          if (store.covered.count(id) == 0) ++view.uncovered;
          const auto sites = site_index.find(id);
          if (sites == site_index.end()) continue;
          for (std::size_t site_id : sites->second) {
            if (store.gap_hits.count(site_id) == 0) {
              unhit_sites.insert(site_id);
            }
          }
        }
        view.gap_hits = unhit_sites.size();
      }
      views.push_back(view);
      arm_plans.push_back({e, kind_name, &it->second});
    }
  }
  const std::vector<std::size_t> counts =
      allocate_budget(config.budget_per_round, views);
  for (std::size_t a = 0; a < arm_plans.size(); ++a) {
    if (counts[a] == 0) continue;
    ArmStats& stats = store.arms[{arm_plans[a].entry, arm_plans[a].kind}];
    const auto& variants = *arm_plans[a].variants;
    for (std::size_t j = 0; j < counts[a]; ++j) {
      const core::Mutant& mutant =
          variants[(stats.cursor + j) % variants.size()];
      PlannedCase pc;
      pc.tc.uuid = "camp-r" + std::to_string(round) + "-" +
                   std::to_string(planned.size());
      pc.tc.raw = mutant.spec.to_wire();
      pc.tc.description = mutant.applied.front().describe();
      pc.tc.origin = core::TestOrigin::kMutation;
      pc.provenance = mutant_provenance(
          store.entries[arm_plans[a].entry].hash, arm_plans[a].kind);
      pc.arm_entry = arm_plans[a].entry;
      pc.arm_kind = arm_plans[a].kind;
      pc.spec = mutant.spec;
      pc.spec_text = serialize_spec(mutant.spec);
      if (cov) {
        pc.cov_ids = cov_ids_of(store.coverage, mutant);
        pc.gap_ids =
            gap_ids_of(store.coverage, site_index, pc.cov_ids, mutant);
      }
      planned.push_back(std::move(pc));
    }
    stats.cursor += counts[a];
  }

  // ---- stream shapes (src/stream) ------------------------------------------
  if (config.streams && !store.stream_entries.empty()) {
    // Round 1 observes every stream seed whole — the connection-level
    // bootstrap — so seed-representable divergences are filed before any
    // mutation budget is spent.
    if (round == 1) {
      for (const auto& entry : store.stream_entries) {
        if (entry.provenance.rfind("stream-seed:", 0) != 0) continue;
        PlannedCase pc;
        pc.tc.uuid = "camp-r" + std::to_string(round) + "-" +
                     std::to_string(planned.size());
        pc.tc.raw = entry.stream.to_wire();
        pc.tc.description = entry.provenance;
        pc.tc.origin = core::TestOrigin::kMutation;
        pc.provenance = entry.provenance;
        pc.is_stream = true;
        pc.stream = entry.stream;
        pc.spec_text = stream::serialize_stream(entry.stream);
        planned.push_back(std::move(pc));
      }
    }
    // Divergence-feedback schedule over (stream entry x stream kind) arms,
    // using the same deterministic apportionment as the single-request
    // budget but over its own arm table and its own budget.
    struct StreamArmPlan {
      std::size_t entry;
      std::string kind;
      std::vector<stream::StreamMutant>* variants;
    };
    std::vector<StreamArmPlan> sarm_plans;
    std::vector<ArmView> sviews;
    std::vector<std::map<std::string, std::vector<stream::StreamMutant>>>
        svariants;
    svariants.reserve(store.stream_entries.size());
    for (const auto& entry : store.stream_entries) {
      svariants.push_back(stream_variants_by_kind(entry.stream));
    }
    for (std::size_t e = 0; e < store.stream_entries.size(); ++e) {
      for (stream::StreamMutationKind kind :
           stream::all_stream_mutation_kinds()) {
        const std::string kind_name(to_string(kind));
        auto it = svariants[e].find(kind_name);
        if (it == svariants[e].end() || it->second.empty()) continue;
        const ArmStats& sstats = store.stream_arms[{e, kind_name}];
        ArmView view;
        view.attempts = sstats.attempts;
        view.novel = sstats.novel;
        view.capacity = it->second.size();
        sviews.push_back(view);
        sarm_plans.push_back({e, kind_name, &it->second});
      }
    }
    const std::vector<std::size_t> scounts =
        allocate_budget(config.stream_budget_per_round, sviews);
    for (std::size_t a = 0; a < sarm_plans.size(); ++a) {
      if (scounts[a] == 0) continue;
      ArmStats& sstats =
          store.stream_arms[{sarm_plans[a].entry, sarm_plans[a].kind}];
      const auto& variants = *sarm_plans[a].variants;
      for (std::size_t j = 0; j < scounts[a]; ++j) {
        const stream::StreamMutant& mutant =
            variants[(sstats.cursor + j) % variants.size()];
        PlannedCase pc;
        pc.tc.uuid = "camp-r" + std::to_string(round) + "-" +
                     std::to_string(planned.size());
        pc.tc.raw = mutant.stream.to_wire();
        pc.tc.description = mutant.applied.describe();
        pc.tc.origin = core::TestOrigin::kMutation;
        pc.provenance = stream_mutant_provenance(
            store.stream_entries[sarm_plans[a].entry].hash,
            sarm_plans[a].kind);
        pc.arm_entry = sarm_plans[a].entry;
        pc.arm_kind = sarm_plans[a].kind;
        pc.is_stream = true;
        pc.stream = mutant.stream;
        pc.spec_text = stream::serialize_stream(mutant.stream);
        planned.push_back(std::move(pc));
      }
      sstats.cursor += scounts[a];
    }
  }
  return plan;
}

void adopt_coverage(StateStore& store, const CampaignConfig& config) {
  // The checkpoint's plan (or its recorded absence-after-adoption) wins:
  // re-adopting over live state would reset the covered set and break
  // resume byte-identity.  A config without a plan never erases one.
  if (store.coverage_enabled() || !config.coverage.enabled()) return;
  store.coverage = config.coverage;
  store.coverage_weighting = config.coverage_weighting;
  store.covered = config.coverage.bootstrap_covered;
  store.gap_hits.clear();
}

ExecutedRound execute_round(const CampaignConfig& config,
                            const net::Chain& chain,
                            const std::vector<PlannedCase>& planned,
                            core::ObservationMemo* memo,
                            net::VerdictCache* verdicts,
                            const std::vector<std::size_t>* subset) {
  ExecutedRound out;
  out.outcomes.resize(planned.size());
  std::vector<std::size_t> index_map;
  if (subset != nullptr) {
    index_map = *subset;
  } else {
    index_map.resize(planned.size());
    std::iota(index_map.begin(), index_map.end(), std::size_t{0});
  }
  // Stream cases take the connection-level observation path; everything
  // else goes through the parallel single-request executor.  The partition
  // preserves index order on both sides.
  std::vector<std::size_t> regular;
  std::vector<std::size_t> stream_cases;
  for (std::size_t idx : index_map) {
    (planned[idx].is_stream ? stream_cases : regular).push_back(idx);
  }
  std::vector<core::TestCase> cases;
  cases.reserve(regular.size());
  for (std::size_t idx : regular) cases.push_back(planned[idx].tc);

  core::ExecutorConfig ec = config.executor;
  ec.shared_memo = memo;
  ec.shared_verdicts = verdicts;
  if (!ec.obs.enabled()) ec.obs = config.obs;
  ec.on_delta = [&](std::size_t index, const core::TestCase&,
                    const core::DetectionResult& delta, bool q) {
    CaseOutcome& oc = out.outcomes[regular[index]];
    oc.executed = true;
    oc.quarantined = q;
    if (!q) oc.signatures = signatures_of(delta);
  };
  core::ParallelExecutor executor(ec);
  out.total = executor.run(chain, cases, &out.stats);

  // Stream observations run serially in ascending index order: a round's
  // stream budget is small, each observation is memoized at the model-call
  // level through the shared verdict cache, and serial execution makes the
  // outcome trivially independent of `jobs` — the byte-identity the
  // selftest proves.
  if (!stream_cases.empty()) {
    const stream::StreamDetector detector(chain);
    const obs::StreamObs strack = obs::StreamObs::from(ec.obs);
    const obs::StreamObs* track = strack.active() ? &strack : nullptr;
    const int max_attempts = std::max(1, config.executor.retry.attempts);
    for (std::size_t idx : stream_cases) {
      const PlannedCase& pc = planned[idx];
      CaseOutcome& oc = out.outcomes[idx];
      oc.executed = true;
      const std::vector<std::string> wires = pc.stream.wires();
      net::StreamObservation sobs;
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        sobs = chain.observe_stream(pc.tc.uuid, wires, /*echo=*/nullptr,
                                    verdicts, track);
        if (!sobs.faulted()) break;
      }
      if (sobs.faulted()) {
        oc.quarantined = true;
        continue;
      }
      oc.signatures = signatures_of_stream(detector.evaluate(sobs, track));
    }
  }
  return out;
}

RoundReport integrate_round(StateStore& store, const CampaignConfig& config,
                            std::size_t round,
                            const std::vector<PlannedCase>& planned,
                            const std::vector<CaseOutcome>& outcomes,
                            const net::Chain& chain,
                            core::ObservationMemo* memo,
                            net::VerdictCache* verdicts) {
  RoundReport rr;
  rr.round = round;
  rr.cases = planned.size();

  // Single-case replay used by the minimizer oracle.  Serial (jobs=1) and
  // memoized, so repeated candidates are cache hits.
  auto signatures_of_spec = [&](const http::RequestSpec& spec) {
    core::TestCase probe;
    probe.uuid = "camp-minimize-probe";
    probe.raw = spec.to_wire();
    probe.description = "minimizer probe";
    probe.origin = core::TestOrigin::kMutation;
    std::vector<Signature> sigs;
    bool quarantined = false;
    core::ExecutorConfig ec = config.executor;
    ec.jobs = 1;
    ec.shared_memo = memo;
    ec.shared_verdicts = verdicts;
    ec.obs = {};
    ec.on_delta = [&](std::size_t, const core::TestCase&,
                      const core::DetectionResult& delta, bool q) {
      quarantined = q;
      if (!q) sigs = signatures_of(delta);
    };
    core::ParallelExecutor executor(ec);
    executor.run(chain, {probe});
    return std::make_pair(std::move(sigs), quarantined);
  };

  for (std::size_t i = 0; i < planned.size(); ++i) {
    const PlannedCase& pc = planned[i];
    const CaseOutcome& oc = outcomes[i];
    // An unexecuted outcome (a shard-coverage hole, which the supervisor
    // prevents) degrades to quarantine semantics: the case goes back to the
    // retry queue instead of silently vanishing.
    if (oc.quarantined || !oc.executed) {
      ++rr.quarantined;
      store.retry_queue.push_back(
          {pc.provenance, pc.tc.raw, pc.spec_text, pc.tc.description});
      continue;
    }
    ArmStats* arm = nullptr;
    if (pc.arm_entry != static_cast<std::size_t>(-1)) {
      arm = pc.is_stream ? &store.stream_arms[{pc.arm_entry, pc.arm_kind}]
                         : &store.arms[{pc.arm_entry, pc.arm_kind}];
      ++arm->attempts;
    }
    // Coverage feedback: an executed (non-quarantined) case marks its
    // productions covered and its gap sites hit, whether or not it filed a
    // finding — the map measures exploration, not yield.
    for (std::size_t id : pc.cov_ids) store.covered.insert(id);
    for (std::size_t id : pc.gap_ids) ++store.gap_hits[id];
    bool interesting = false;
    for (const Signature& found : oc.signatures) {
      const std::string fp = fingerprint(found, pc.provenance);
      if (store.known_fingerprint(fp)) {
        ++rr.duplicate;
        continue;
      }
      Finding f;
      f.round = round;
      f.fingerprint = fp;
      f.detector = found.detector;
      f.vector = found.vector;
      f.provenance = pc.provenance;
      f.case_uuid = pc.tc.uuid;
      f.description = pc.tc.description;
      store.add_finding(std::move(f));
      ++rr.novel;
      interesting = true;
      if (arm) ++arm->novel;
      if (config.obs.metrics && !pc.arm_kind.empty()) {
        config.obs.metrics
            ->counter("hdiff_campaign_novel_" + metric_segment(pc.arm_kind) +
                      "_total")
            .add(1);
      }
    }
    // An interesting stream mutant joins the stream corpus unminimized:
    // the delta-debug minimizer's oracle replays single requests, and a
    // stream's interestingness lives in the relation *between* messages —
    // the drop-message operator is the stream-level shrinking move, applied
    // by later rounds through the arm scheduler instead.
    if (interesting && pc.is_stream) {
      const std::string hash = stream_content_address(pc.stream);
      if (!store.has_stream_entry(hash)) {
        StreamEntry entry;
        entry.hash = hash;
        entry.provenance = pc.provenance;
        entry.stream = pc.stream;
        store.add_stream_entry(std::move(entry));
        ++rr.new_entries;
      }
      continue;
    }
    // An interesting mutant becomes a new mutation seed: minimize it,
    // then store it content-addressed (idempotent on replay).
    if (interesting && !pc.spec_text.empty()) {
      http::RequestSpec stored = pc.spec;
      if (config.minimize_new) {
        const auto target = canonical_set(oc.signatures);
        auto oracle = [&](const http::RequestSpec& candidate) {
          auto [sigs, q] = signatures_of_spec(candidate);
          if (q) return false;
          const auto got = canonical_set(sigs);
          return std::includes(got.begin(), got.end(), target.begin(),
                               target.end());
        };
        MinimizeOutcome mo = minimize_spec(stored, oracle, config.minimize);
        rr.minimize_steps += mo.steps;
        if (config.obs.metrics) {
          config.obs.metrics->histogram("hdiff_campaign_minimize_steps")
              .observe(mo.steps);
        }
        stored = std::move(mo.spec);
      }
      const std::string hash = content_address(stored);
      if (!store.has_entry(hash)) {
        CorpusEntry entry;
        entry.hash = hash;
        entry.provenance = pc.provenance;
        entry.spec = std::move(stored);
        store.add_entry(std::move(entry));
        ++rr.new_entries;
      }
    }
  }
  rr.coverage_covered = store.covered.size();
  rr.gap_sites_hit = store.gap_hits.size();
  return rr;
}

void emit_round_metrics(const obs::Observability& obs, const RoundReport& rr,
                        const StateStore& store) {
  if (!obs.metrics) return;
  auto& m = *obs.metrics;
  m.counter("hdiff_campaign_rounds_total").add(1);
  m.counter("hdiff_campaign_cases_total").add(rr.cases);
  m.counter("hdiff_campaign_novel_total").add(rr.novel);
  m.counter("hdiff_campaign_duplicate_total").add(rr.duplicate);
  m.counter("hdiff_campaign_quarantined_total").add(rr.quarantined);
  m.gauge("hdiff_campaign_corpus_entries")
      .set(static_cast<std::int64_t>(store.entries.size()));
  m.gauge("hdiff_campaign_findings")
      .set(static_cast<std::int64_t>(store.findings.size()));
  if (!store.stream_entries.empty()) {
    m.gauge("hdiff_campaign_stream_entries")
        .set(static_cast<std::int64_t>(store.stream_entries.size()));
  }
  if (store.coverage_enabled()) {
    m.gauge("hdiff_campaign_coverage_productions_covered")
        .set(static_cast<std::int64_t>(store.covered.size()));
    m.gauge("hdiff_campaign_coverage_productions_total")
        .set(static_cast<std::int64_t>(store.coverage.productions.size()));
    m.gauge("hdiff_campaign_coverage_gap_sites_hit")
        .set(static_cast<std::int64_t>(store.gap_hits.size()));
    m.gauge("hdiff_campaign_coverage_gap_sites_total")
        .set(static_cast<std::int64_t>(store.coverage.sites.size()));
  }
}

namespace {

/// Copy the store's coverage totals (and the top unhit sites) into a
/// report; shared by run()'s exit paths and status().
void fill_coverage_report(CampaignReport& report, const StateStore& store) {
  report.coverage_enabled = store.coverage_enabled();
  if (!report.coverage_enabled) return;
  report.coverage_weighting = store.coverage_weighting;
  report.coverage_covered = store.covered.size();
  report.coverage_total = store.coverage.productions.size();
  report.gap_sites_hit = store.gap_hits.size();
  report.gap_sites_total = store.coverage.sites.size();
  for (const auto& site : store.coverage.sites) {
    if (report.top_unhit.size() >= 5) break;
    if (store.gap_hits.count(site.id) == 0) report.top_unhit.push_back(site);
  }
}

}  // namespace

CampaignEngine::CampaignEngine(CampaignConfig config)
    : config_(std::move(config)) {
  if (config_.seeds.empty()) config_.seeds = default_campaign_seeds();
}

CampaignReport CampaignEngine::run(
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet) {
  CampaignReport report;
  const std::string sig = campaign_config_sig(config_);

  StateStore store(config_.state_dir);
  // Writer lock first: two engines appending to one state dir would corrupt
  // the findings artifact; the loser gets a structured refusal instead.
  if (!store.acquire_lock()) {
    report.error = store.error();
    return report;
  }
  if (store.exists()) {
    if (!store.load()) {
      report.error = store.error();
      return report;
    }
    if (store.config_sig != sig) {
      report.error = "config signature mismatch: state dir " +
                     config_.state_dir + " was created by a campaign with " +
                     "different seeds/bootstrap/budget (" + store.config_sig +
                     " vs " + sig + ")";
      return report;
    }
    report.resumed = true;
  } else {
    if (!store.init(sig)) {
      report.error = store.error();
      return report;
    }
  }
  // Seed entries are (re-)registered on every fresh start: add_entry is
  // idempotent, and a crash before the round-0 commit leaves a checkpoint
  // with no entries, healed here on resume.
  if (store.rounds_completed == 0) {
    register_seed_entries(store, config_);
    register_stream_seed_entries(store, config_);
  }
  adopt_coverage(store, config_);

  net::Chain chain = net::Chain::from_fleet(fleet);
  // Cross-round caches: a mutant re-scheduled in a later round (or replayed
  // by the minimizer) costs a hash lookup instead of a chain observation.
  core::ObservationMemo memo;
  net::VerdictCache verdicts;

  const std::size_t total_rounds = config_.rounds + 1;
  for (std::size_t round = store.rounds_completed; round < total_rounds;
       ++round) {
    obs::Span round_span(config_.obs.trace, "campaign:round", "campaign");
    if (config_.obs.trace) {
      round_span.arg("round", std::to_string(round));
    }

    RoundPlan plan = plan_round(store, config_, round);
    ExecutedRound executed =
        execute_round(config_, chain, plan.cases, &memo, &verdicts);
    if (round == 0) report.bootstrap_findings = std::move(executed.total);

    RoundReport rr = integrate_round(store, config_, round, plan.cases,
                                     executed.outcomes, chain, &memo,
                                     &verdicts);
    rr.replayed = plan.replayed;
    emit_round_metrics(config_.obs, rr, store);
    report.rounds.push_back(rr);
    report.novel_total += rr.novel;
    report.duplicate_total += rr.duplicate;

    // ---- checkpoint ------------------------------------------------------
    // The round's findings are already appended to findings.jsonl (inside
    // add_finding); the rename below is the commit point.  The crash hook
    // stops exactly between the two — the worst window — which load() heals
    // by truncating the artifact back to the checkpoint.
    if (config_.crash_after_round == static_cast<int>(round)) {
      report.interrupted = true;
      report.rounds_completed = store.rounds_completed;
      report.total_findings = store.findings.size();
      report.corpus_entries = store.entries.size();
      report.stream_entries = store.stream_entries.size();
      report.retry_depth = store.retry_queue.size();
      fill_coverage_report(report, store);
      return report;
    }
    if (!store.commit_round(round)) {
      report.error = store.error();
      return report;
    }
  }

  report.rounds_completed = store.rounds_completed;
  report.total_findings = store.findings.size();
  report.corpus_entries = store.entries.size();
  report.stream_entries = store.stream_entries.size();
  report.retry_depth = store.retry_queue.size();
  fill_coverage_report(report, store);
  return report;
}

CampaignReport CampaignEngine::status(const std::string& state_dir) {
  CampaignReport report;
  StateStore store(state_dir);
  if (!store.exists()) {
    report.error = "no campaign state at " + state_dir;
    return report;
  }
  // Read-only on purpose: status may be asked about a *live* state dir (a
  // serve supervisor mid-round); load()'s findings heal would race the
  // owner's appends.
  if (!store.load_readonly()) {
    report.error = store.error();
    return report;
  }
  report.rounds_completed = store.rounds_completed;
  report.total_findings = store.findings.size();
  report.corpus_entries = store.entries.size();
  report.stream_entries = store.stream_entries.size();
  report.retry_depth = store.retry_queue.size();
  for (std::size_t r = 0; r < store.rounds_completed; ++r) {
    RoundReport rr;
    rr.round = r;
    for (const auto& f : store.findings) {
      if (f.round == r) ++rr.novel;
    }
    report.rounds.push_back(rr);
    report.novel_total += rr.novel;
  }
  fill_coverage_report(report, store);
  return report;
}

CampaignEngine::MinimizeReport CampaignEngine::minimize_corpus(
    const std::string& state_dir,
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet) {
  MinimizeReport report;
  StateStore store(state_dir);
  if (!store.load_readonly()) {
    report.error = store.error();
    return report;
  }
  net::Chain chain = net::Chain::from_fleet(fleet);
  core::ObservationMemo memo;
  net::VerdictCache verdicts;
  core::DetectionEngine engine;
  auto signatures_of_spec = [&](const http::RequestSpec& spec) {
    const std::string raw = spec.to_wire();
    const net::ChainObservation* cached = memo.find(raw);
    core::TestCase probe;
    probe.uuid = "camp-minimize-probe";
    probe.raw = raw;
    probe.origin = core::TestOrigin::kMutation;
    if (cached == nullptr) {
      cached = memo.insert(
          raw, chain.observe(probe.uuid, raw, /*echo=*/nullptr, &verdicts));
    }
    if (cached->faulted())
      return std::make_pair(std::vector<Signature>{}, true);
    return std::make_pair(signatures_of(engine.evaluate(probe, *cached)),
                          false);
  };
  for (const auto& entry : store.entries) {
    if (entry.provenance.rfind("mutant:", 0) != 0) continue;
    ++report.entries;
    auto [target_sigs, faulted] = signatures_of_spec(entry.spec);
    if (faulted || target_sigs.empty()) continue;
    const auto target = canonical_set(target_sigs);
    auto oracle = [&](const http::RequestSpec& candidate) {
      auto [sigs, q] = signatures_of_spec(candidate);
      if (q) return false;
      const auto got = canonical_set(sigs);
      return std::includes(got.begin(), got.end(), target.begin(),
                           target.end());
    };
    MinimizeOutcome mo = minimize_spec(entry.spec, oracle);
    report.steps += mo.steps;
    if (mo.accepted > 0) ++report.shrunk;
  }
  return report;
}

std::string campaign_report_json(const CampaignReport& report) {
  report::JsonWriter w;
  w.begin_object();
  w.key("campaign").begin_object();
  w.key("rounds_completed")
      .value(static_cast<std::uint64_t>(report.rounds_completed));
  w.key("findings").value(static_cast<std::uint64_t>(report.total_findings));
  w.key("corpus_entries")
      .value(static_cast<std::uint64_t>(report.corpus_entries));
  w.key("stream_entries")
      .value(static_cast<std::uint64_t>(report.stream_entries));
  w.key("retry_depth").value(static_cast<std::uint64_t>(report.retry_depth));
  w.key("resumed").value(report.resumed);
  w.key("interrupted").value(report.interrupted);
  w.key("novel").value(static_cast<std::uint64_t>(report.novel_total));
  w.key("duplicate").value(static_cast<std::uint64_t>(report.duplicate_total));
  const std::size_t signatures = report.novel_total + report.duplicate_total;
  w.key("dedup_ratio")
      .value(signatures == 0 ? 0.0
                             : static_cast<double>(report.duplicate_total) /
                                   static_cast<double>(signatures));
  w.key("coverage").begin_object();
  w.key("enabled").value(report.coverage_enabled);
  w.key("weighting").value(report.coverage_weighting);
  w.key("productions_covered")
      .value(static_cast<std::uint64_t>(report.coverage_covered));
  w.key("productions_total")
      .value(static_cast<std::uint64_t>(report.coverage_total));
  w.key("gap_sites_hit")
      .value(static_cast<std::uint64_t>(report.gap_sites_hit));
  w.key("gap_sites_total")
      .value(static_cast<std::uint64_t>(report.gap_sites_total));
  w.key("top_unhit").begin_array();
  for (const auto& site : report.top_unhit) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(site.id));
    w.key("rule").value(site.rule);
    w.key("alternatives").begin_array();
    w.value(static_cast<std::uint64_t>(site.alt_a));
    w.value(static_cast<std::uint64_t>(site.alt_b));
    w.end_array();
    w.key("kind").value(site.kind == 'b' ? "byte-overlap" : "first-overlap");
    w.key("rank").value(static_cast<std::uint64_t>(site.rank));
    w.key("overlap").value(analysis::format_byte_class(site.overlap));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("rounds").begin_array();
  for (const auto& rr : report.rounds) {
    w.begin_object();
    w.key("round").value(static_cast<std::uint64_t>(rr.round));
    w.key("cases").value(static_cast<std::uint64_t>(rr.cases));
    w.key("replayed").value(static_cast<std::uint64_t>(rr.replayed));
    w.key("novel").value(static_cast<std::uint64_t>(rr.novel));
    w.key("duplicate").value(static_cast<std::uint64_t>(rr.duplicate));
    w.key("quarantined").value(static_cast<std::uint64_t>(rr.quarantined));
    w.key("new_entries").value(static_cast<std::uint64_t>(rr.new_entries));
    w.key("minimize_steps")
        .value(static_cast<std::uint64_t>(rr.minimize_steps));
    if (report.coverage_enabled) {
      w.key("coverage_covered")
          .value(static_cast<std::uint64_t>(rr.coverage_covered));
      w.key("gap_sites_hit")
          .value(static_cast<std::uint64_t>(rr.gap_sites_hit));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace hdiff::campaign
