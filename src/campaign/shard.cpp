#include "campaign/shard.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hdiff::campaign {
namespace {

namespace fs = std::filesystem;

std::size_t to_size(const std::string& s) {
  return static_cast<std::size_t>(std::strtoull(s.c_str(), nullptr, 10));
}

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::int64_t to_i64(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

}  // namespace

std::size_t shard_of(std::string_view raw, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(core::fnv1a64(raw)) % shards;
}

std::vector<std::size_t> shard_indices(const std::vector<PlannedCase>& planned,
                                       std::size_t shard,
                                       std::size_t shards) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < planned.size(); ++i) {
    if (shard_of(planned[i].tc.raw, shards) == shard) out.push_back(i);
  }
  return out;
}

std::string shard_result_path(const std::string& state_dir, std::size_t round,
                              std::size_t shard) {
  return state_dir + "/shards/round-" + std::to_string(round) + "-shard-" +
         std::to_string(shard) + ".result";
}

std::string render_shard_result(const ShardResult& result) {
  std::string out = "hdiff-shard-result-v1\n";
  out += "round=" + std::to_string(result.round) + "\n";
  out += "shard=" + std::to_string(result.shard) + " " +
         std::to_string(result.shards) + "\n";
  out += "config_sig=" + result.config_sig + "\n";
  out += "stats=" + std::to_string(result.faulted_attempts) + " " +
         std::to_string(result.retry_attempts) + " " +
         std::to_string(result.recovered_cases) + " " +
         std::to_string(result.quarantined_cases) + "\n";
  // Optional observability sections (PR 8): metric names are field-encoded
  // (they may embed `{label="value"}` suffixes with spaces in the values),
  // histogram rows carry raw per-bucket counts so the supervisor can merge
  // them bucket-wise, and trace events ride with the pid that emitted them.
  for (const auto& [name, value] : result.metrics.counters) {
    out += "mc=" + field_enc(name) + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : result.metrics.gauges) {
    out += "mg=" + field_enc(name) + " " + std::to_string(value) + "\n";
  }
  for (const auto& row : result.metrics.histograms) {
    out += "mh=" + field_enc(row.name) + " " + std::to_string(row.sum) + " " +
           std::to_string(row.count) + " " + std::to_string(row.bounds.size());
    for (std::uint64_t b : row.bounds) out += " " + std::to_string(b);
    for (std::uint64_t c : row.buckets) out += " " + std::to_string(c);
    out += "\n";
  }
  if (result.trace_pid != 0) {
    out += "tpid=" + std::to_string(result.trace_pid) + "\n";
  }
  for (const auto& e : result.trace) {
    out += "tev=" + std::string(1, e.ph) + " " + std::to_string(e.tid) + " " +
           std::to_string(e.ts) + " " + std::to_string(e.dur) + " " +
           field_enc(e.name) + " " + field_enc(e.cat) + " " +
           field_enc(e.arg_key) + " " + field_enc(e.arg_value) + "\n";
  }
  for (const auto& [index, oc] : result.outcomes) {
    out += "case=" + std::to_string(index) + " " +
           std::string(oc.quarantined ? "1" : "0") + " " +
           std::to_string(oc.signatures.size()) + "\n";
    for (const auto& sig : oc.signatures) {
      out += "sig=" + field_enc(sig.detector);
      for (const auto& component : sig.vector) {
        out += " " + field_enc(component);
      }
      out += "\n";
    }
  }
  // Explicit end marker: a torn tail (the non-atomic-write failure mode this
  // format defends against at parse time, on top of tmp+rename) is detected
  // even when the truncation lands exactly on a line boundary.
  out += "end=" + std::to_string(result.outcomes.size()) + "\n";
  return out;
}

bool parse_shard_result(std::string_view text, ShardResult* out) {
  *out = ShardResult{};
  // The end marker's own newline is part of the format: without this, a
  // result torn one byte short of complete would still parse.  With it,
  // *every* proper prefix of a valid result is rejected.
  if (text.empty() || text.back() != '\n') return false;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "hdiff-shard-result-v1") return false;
  CaseOutcome* open_case = nullptr;
  std::size_t open_sigs = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (ended) return false;  // bytes after the end marker
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = line.substr(0, eq);
    const std::string rest = line.substr(eq + 1);
    if (key == "round") {
      out->round = to_size(rest);
    } else if (key == "shard") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 2) return false;
      out->shard = to_size(tokens[0]);
      out->shards = to_size(tokens[1]);
    } else if (key == "config_sig") {
      out->config_sig = rest;
    } else if (key == "stats") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 4) return false;
      out->faulted_attempts = to_size(tokens[0]);
      out->retry_attempts = to_size(tokens[1]);
      out->recovered_cases = to_size(tokens[2]);
      out->quarantined_cases = to_size(tokens[3]);
    } else if (key == "mc") {
      auto tokens = split_fields(rest);
      std::string name;
      if (tokens.size() != 2 || !field_dec(tokens[0], &name)) return false;
      out->metrics.counters.emplace_back(std::move(name), to_u64(tokens[1]));
    } else if (key == "mg") {
      auto tokens = split_fields(rest);
      std::string name;
      if (tokens.size() != 2 || !field_dec(tokens[0], &name)) return false;
      out->metrics.gauges.emplace_back(std::move(name), to_i64(tokens[1]));
    } else if (key == "mh") {
      auto tokens = split_fields(rest);
      obs::Registry::HistogramRow row;
      if (tokens.size() < 4 || !field_dec(tokens[0], &row.name)) return false;
      row.sum = to_u64(tokens[1]);
      row.count = to_u64(tokens[2]);
      const std::size_t nbounds = to_size(tokens[3]);
      // nbounds bounds plus nbounds+1 bucket counts (overflow last).
      if (tokens.size() != 4 + nbounds + nbounds + 1) return false;
      for (std::size_t i = 0; i < nbounds; ++i) {
        row.bounds.push_back(to_u64(tokens[4 + i]));
      }
      for (std::size_t i = 0; i <= nbounds; ++i) {
        row.buckets.push_back(to_u64(tokens[4 + nbounds + i]));
      }
      out->metrics.histograms.push_back(std::move(row));
    } else if (key == "tpid") {
      out->trace_pid = static_cast<std::uint32_t>(to_u64(rest));
    } else if (key == "tev") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 8 || tokens[0].size() != 1) return false;
      obs::TraceEvent e;
      e.ph = tokens[0][0];
      e.tid = static_cast<std::uint32_t>(to_u64(tokens[1]));
      e.ts = to_u64(tokens[2]);
      e.dur = to_u64(tokens[3]);
      if (!field_dec(tokens[4], &e.name) || !field_dec(tokens[5], &e.cat) ||
          !field_dec(tokens[6], &e.arg_key) ||
          !field_dec(tokens[7], &e.arg_value)) {
        return false;
      }
      out->trace.push_back(std::move(e));
    } else if (key == "case") {
      if (open_case != nullptr && open_sigs != open_case->signatures.size())
        return false;  // previous case's signature lines went missing
      auto tokens = split_fields(rest);
      if (tokens.size() != 3) return false;
      const std::size_t index = to_size(tokens[0]);
      if (out->outcomes.count(index)) return false;
      CaseOutcome oc;
      oc.executed = true;
      oc.quarantined = tokens[1] == "1";
      open_sigs = to_size(tokens[2]);
      open_case = &out->outcomes.emplace(index, std::move(oc)).first->second;
    } else if (key == "sig") {
      if (open_case == nullptr ||
          open_case->signatures.size() >= open_sigs)
        return false;
      auto tokens = split_fields(rest);
      if (tokens.empty()) return false;
      Signature sig;
      if (!field_dec(tokens[0], &sig.detector)) return false;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string component;
        if (!field_dec(tokens[i], &component)) return false;
        sig.vector.push_back(std::move(component));
      }
      open_case->signatures.push_back(std::move(sig));
    } else if (key == "end") {
      if (open_case != nullptr && open_sigs != open_case->signatures.size())
        return false;
      if (to_size(rest) != out->outcomes.size()) return false;
      ended = true;
    } else {
      return false;
    }
  }
  return ended;
}

bool write_shard_result(const std::string& state_dir,
                        const ShardResult& result) {
  std::error_code ec;
  fs::create_directories(state_dir + "/shards", ec);
  if (ec) return false;
  return write_file_atomic_durable(
      shard_result_path(state_dir, result.round, result.shard),
      render_shard_result(result));
}

bool load_shard_result(const std::string& state_dir, std::size_t round,
                       std::size_t shard, std::size_t shards,
                       const std::string& config_sig, ShardResult* out) {
  std::ifstream in(shard_result_path(state_dir, round, shard),
                   std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (!parse_shard_result(buffer.str(), out)) return false;
  return out->round == round && out->shard == shard &&
         out->shards == shards && out->config_sig == config_sig;
}

bool merge_shard_outcomes(const std::vector<ShardResult>& results,
                          std::size_t planned_cases,
                          std::vector<CaseOutcome>* out,
                          std::size_t* missing) {
  out->assign(planned_cases, CaseOutcome{});
  for (const auto& result : results) {
    for (const auto& [index, oc] : result.outcomes) {
      if (index >= planned_cases) return false;
      (*out)[index] = oc;
    }
  }
  for (std::size_t i = 0; i < planned_cases; ++i) {
    if (!(*out)[i].executed) {
      if (missing != nullptr) *missing = i;
      return false;
    }
  }
  return true;
}

}  // namespace hdiff::campaign
