#include "campaign/scheduler.h"

#include <algorithm>
#include <cstdint>

namespace hdiff::campaign {

std::size_t arm_weight(const ArmView& arm) {
  // 64-bit intermediate: novel is bounded by total findings and the
  // coverage terms by the grammar's production/site counts (all small), so
  // the shifted numerator cannot overflow in any realistic campaign.
  const std::uint64_t numerator =
      (1 + static_cast<std::uint64_t>(arm.novel) + arm.uncovered +
       arm.gap_hits)
      << 16;
  return static_cast<std::size_t>(numerator / (1 + arm.attempts));
}

std::vector<std::size_t> allocate_budget(std::size_t budget,
                                         const std::vector<ArmView>& arms) {
  std::vector<std::size_t> counts(arms.size(), 0);
  // Re-apportion until the budget is spent or every arm is at capacity.
  // Each pass runs largest-remainder over the arms with headroom; spill
  // from arms that hit their cap feeds the next pass.
  std::size_t remaining = budget;
  for (;;) {
    std::uint64_t total_weight = 0;
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (counts[i] < arms[i].capacity) {
        open.push_back(i);
        total_weight += arm_weight(arms[i]);
      }
    }
    if (remaining == 0 || open.empty() || total_weight == 0) break;

    // Integer quota + fractional remainder per open arm.
    struct Slice {
      std::size_t index;
      std::uint64_t remainder;
    };
    std::vector<Slice> slices;
    std::size_t handed = 0;
    for (std::size_t i : open) {
      const std::uint64_t w = arm_weight(arms[i]);
      const std::uint64_t exact = static_cast<std::uint64_t>(remaining) * w;
      std::size_t quota = static_cast<std::size_t>(exact / total_weight);
      const std::uint64_t remainder = exact % total_weight;
      const std::size_t headroom = arms[i].capacity - counts[i];
      quota = std::min(quota, headroom);
      counts[i] += quota;
      handed += quota;
      if (counts[i] < arms[i].capacity) slices.push_back({i, remainder});
    }
    // Distribute the leftover units by largest remainder, index ascending
    // on ties (stable deterministic order).
    std::stable_sort(slices.begin(), slices.end(),
                     [](const Slice& a, const Slice& b) {
                       return a.remainder > b.remainder;
                     });
    std::size_t leftover = remaining - handed;
    for (const Slice& s : slices) {
      if (leftover == 0) break;
      if (counts[s.index] < arms[s.index].capacity) {
        ++counts[s.index];
        ++handed;
        --leftover;
      }
    }
    if (handed == 0) break;  // all open arms saturated mid-pass
    remaining -= handed;
  }
  return counts;
}

}  // namespace hdiff::campaign
