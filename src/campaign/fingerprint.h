// Stable finding fingerprints for the campaign findings database.
//
// A one-shot `hdiff run` reports raw divergences; a long-running campaign
// must recognise that round 37 just rediscovered what round 2 already
// filed.  The unit of deduplication is the *fingerprint*: detector class +
// normalized divergence vector + mutation provenance, hashed into a stable
// 16-hex-digit key.  Normalization strips everything run-dependent — case
// uuids, free-text details (which embed per-case descriptions), byte
// counts — and keeps only the structural facts: which implementations, in
// which roles, disagreed in which way.  Two mutants of the same seed+kind
// that trip the same (front, back) pairs under the same detector collapse
// to one finding; a new pair, a new detector, or a different provenance is
// a new finding.
#pragma once

#include <string>
#include <vector>

#include "core/detect.h"
#include "stream/detect.h"

namespace hdiff::campaign {

/// One deduplicatable divergence extracted from a per-case delta.
struct Signature {
  /// Detector class: "sr-violation", "HRS", "HoT", "CPDoS", "discrepancy".
  std::string detector;
  /// Normalized divergence vector: sorted, unique, uuid-free components
  /// ("front->back" for pairs, "impl|sr_id" for violations,
  /// "status"/"host"/"body" flags for discrepancies).
  std::vector<std::string> vector;

  /// Canonical one-line rendering ("<detector>:<c1>,<c2>,...").
  std::string canonical() const;
};

/// Split a per-case delta into its per-detector signatures (empty when the
/// case produced no divergence).  Deterministic: components are sorted and
/// deduplicated, so the result is independent of map iteration accidents
/// and of the case's uuid.
std::vector<Signature> signatures_of(const core::DetectionResult& delta);

/// Stream counterpart: the stream detectors already emit one finding per
/// detector class with sorted, uuid-free components, so the mapping is
/// direct — detector name becomes the signature's detector ("stream-*"
/// classes never collide with the single-request ones).
std::vector<Signature> signatures_of_stream(
    const stream::StreamDetectionResult& result);

/// Stable fingerprint key: FNV-1a64 over `canonical(signature) + "#" +
/// provenance`, rendered as 16 lowercase hex digits.  Provenance is part of
/// the key by design (ISSUE: detector class + divergence vector + mutation
/// provenance): the same divergence reached via a different seed/operator
/// is a distinct finding.
std::string fingerprint(const Signature& sig, const std::string& provenance);

/// FNV-1a64 rendered as 16 lowercase hex digits (also the corpus store's
/// content address for raw request bytes).
std::string hex64(std::string_view bytes);

}  // namespace hdiff::campaign
