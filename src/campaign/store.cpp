#include "campaign/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/fingerprint.h"
#include "core/export.h"
#include "report/json.h"

namespace hdiff::campaign {
namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

/// write(2) the whole buffer, surviving EINTR and short writes.
bool write_all(int fd, std::string_view content) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path`, so a just-renamed entry is itself
/// durable (rename updates the directory, not the file).
bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::size_t to_size(const std::string& s) {
  return static_cast<std::size_t>(std::strtoull(s.c_str(), nullptr, 10));
}

}  // namespace

bool write_file_atomic_durable(const std::string& path,
                               std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  // The tmp bytes must be on disk *before* the rename publishes them: a
  // rename-without-fsync crash can legally surface a zero-length file.
  const bool written = write_all(fd, content) && ::fsync(fd) == 0;
  ::close(fd);
  if (!written) {
    ::unlink(tmp.c_str());
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return false;
  return fsync_parent_dir(path);
}

std::string content_address(const http::RequestSpec& spec) {
  return hex64(serialize_spec(spec));
}

std::string stream_content_address(const stream::RequestStream& s) {
  return hex64(stream::serialize_stream(s));
}

std::string finding_jsonl(const Finding& f) {
  report::JsonWriter w;
  w.begin_object();
  w.key("round").value(static_cast<std::uint64_t>(f.round));
  w.key("fingerprint").value(f.fingerprint);
  w.key("detector").value(f.detector);
  w.key("provenance").value(f.provenance);
  w.key("case_uuid").value(f.case_uuid);
  w.key("description").value(f.description);
  w.key("vector").begin_array();
  for (const auto& v : f.vector) w.value(v);
  w.end_array();
  w.end_object();
  return w.str();
}

StateStore::StateStore(std::string state_dir) : dir_(std::move(state_dir)) {}

StateStore::~StateStore() { release_lock(); }

std::string StateStore::state_path() const { return dir_ + "/campaign.state"; }
std::string StateStore::findings_path() const {
  return dir_ + "/findings.jsonl";
}
std::string StateStore::corpus_path(const std::string& hash) const {
  return dir_ + "/corpus/" + hash + ".case";
}
std::string StateStore::stream_corpus_path(const std::string& hash) const {
  return dir_ + "/corpus/" + hash + ".stream";
}
std::string StateStore::lock_path() const { return dir_ + "/lock"; }

bool StateStore::acquire_lock() {
  if (lock_fd_ >= 0) return true;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create " + dir_ + ": " + ec.message();
    return false;
  }
  const int fd =
      ::open(lock_path().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    error_ = "cannot open " + lock_path();
    return false;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    error_ = "state dir " + dir_ +
             " is locked by another campaign writer (flock on " + lock_path() +
             "); refusing to run two engines against one state dir";
    return false;
  }
  lock_fd_ = fd;
  return true;
}

void StateStore::release_lock() {
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
}

bool StateStore::exists() const {
  std::error_code ec;
  return fs::exists(state_path(), ec);
}

bool StateStore::init(const std::string& sig) {
  std::error_code ec;
  fs::create_directories(dir_ + "/corpus", ec);
  if (ec) {
    error_ = "cannot create " + dir_ + "/corpus: " + ec.message();
    return false;
  }
  config_sig = sig;
  rounds_completed = 0;
  if (!write_file(findings_path(), "")) {
    error_ = "cannot create " + findings_path();
    return false;
  }
  if (!write_file_atomic_durable(state_path(), render_state())) {
    error_ = "cannot write " + state_path();
    return false;
  }
  return true;
}

bool StateStore::write_corpus_file(const CorpusEntry& entry) {
  // Durable before the checkpoint that references it commits: a checkpoint
  // naming a corpus hash whose file evaporated in a crash would fail to
  // load.
  if (!write_file_atomic_durable(corpus_path(entry.hash),
                                 serialize_spec(entry.spec))) {
    error_ = "cannot write " + corpus_path(entry.hash);
    return false;
  }
  return true;
}

std::size_t StateStore::add_entry(CorpusEntry entry) {
  if (entry_hashes_.count(entry.hash)) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].hash == entry.hash) return i;
    }
  }
  write_corpus_file(entry);
  entry_hashes_.insert(entry.hash);
  entries.push_back(std::move(entry));
  return entries.size() - 1;
}

bool StateStore::has_entry(const std::string& hash) const {
  return entry_hashes_.count(hash) > 0;
}

bool StateStore::write_stream_corpus_file(const StreamEntry& entry) {
  if (!write_file_atomic_durable(stream_corpus_path(entry.hash),
                                 stream::serialize_stream(entry.stream))) {
    error_ = "cannot write " + stream_corpus_path(entry.hash);
    return false;
  }
  return true;
}

std::size_t StateStore::add_stream_entry(StreamEntry entry) {
  if (stream_entry_hashes_.count(entry.hash)) {
    for (std::size_t i = 0; i < stream_entries.size(); ++i) {
      if (stream_entries[i].hash == entry.hash) return i;
    }
  }
  write_stream_corpus_file(entry);
  stream_entry_hashes_.insert(entry.hash);
  stream_entries.push_back(std::move(entry));
  return stream_entries.size() - 1;
}

bool StateStore::has_stream_entry(const std::string& hash) const {
  return stream_entry_hashes_.count(hash) > 0;
}

void StateStore::add_finding(Finding f) {
  fingerprints_.insert(f.fingerprint);
  std::ofstream out(findings_path(), std::ios::binary | std::ios::app);
  out << finding_jsonl(f) << "\n";
  findings.push_back(std::move(f));
}

std::string StateStore::render_state() const {
  std::string out = "hdiff-campaign-state-v1\n";
  out += "config_sig=" + config_sig + "\n";
  out += "rounds_completed=" + std::to_string(rounds_completed) + "\n";
  if (coverage.enabled()) {
    // Coverage block (optional: absent = coverage disabled, which is how
    // checkpoints written before the feature existed keep loading).  The
    // plan itself is serialized — not recomputed on load — so production
    // and site ids are byte-stable even if the corpus on disk changes.
    out += "covsig=" + coverage.sig + "\n";
    out += std::string("covweight=") + (coverage_weighting ? "1" : "0") + "\n";
    for (const auto& p : coverage.productions) {
      out += "covprod=" + std::to_string(p.depth) + " " +
             (p.leftmost ? "1" : "0") + " " + p.name + "\n";
    }
    for (const auto& s : coverage.sites) {
      out += "covsite=" + std::to_string(s.production) + " " +
             std::to_string(s.alt_a) + " " + std::to_string(s.alt_b) + " " +
             s.kind + " " + analysis::byte_class_hex(s.overlap) + " " +
             std::to_string(s.rank);
      for (std::size_t a : s.related) out += " " + std::to_string(a);
      out += "\n";
    }
    auto id_list = [](const std::set<std::size_t>& ids) {
      std::string line;
      for (std::size_t id : ids) {
        if (!line.empty()) line += ' ';
        line += std::to_string(id);
      }
      return line;
    };
    if (!coverage.bootstrap_covered.empty()) {
      out += "covboot=" + id_list(coverage.bootstrap_covered) + "\n";
    }
    if (!covered.empty()) out += "covered=" + id_list(covered) + "\n";
    for (const auto& [id, count] : gap_hits) {
      out += "gaphit=" + std::to_string(id) + " " + std::to_string(count) +
             "\n";
    }
  }
  for (const auto& e : entries) {
    out += "entry=" + e.hash + " " + field_enc(e.provenance) + "\n";
  }
  for (const auto& e : stream_entries) {
    out += "sentry=" + e.hash + " " + field_enc(e.provenance) + "\n";
  }
  for (const auto& [key, stats] : arms) {
    out += "arm=" + std::to_string(key.first) + " " + key.second + " " +
           std::to_string(stats.attempts) + " " + std::to_string(stats.novel) +
           " " + std::to_string(stats.cursor) + "\n";
  }
  for (const auto& [key, stats] : stream_arms) {
    out += "sarm=" + std::to_string(key.first) + " " + key.second + " " +
           std::to_string(stats.attempts) + " " + std::to_string(stats.novel) +
           " " + std::to_string(stats.cursor) + "\n";
  }
  for (const auto& r : retry_queue) {
    out += "retry=" + field_enc(r.provenance) + " " + field_enc(r.raw) + " " +
           field_enc(r.spec_text) + " " + field_enc(r.description) + "\n";
  }
  for (const auto& f : findings) {
    out += "finding=" + std::to_string(f.round) + " " + f.fingerprint + " " +
           field_enc(f.detector) + " " + field_enc(f.provenance) + " " +
           field_enc(f.case_uuid) +
           " " + field_enc(f.description);
    for (const auto& v : f.vector) out += " " + field_enc(v);
    out += "\n";
  }
  return out;
}

bool StateStore::parse_state(std::string_view text) {
  entries.clear();
  arms.clear();
  stream_entries.clear();
  stream_arms.clear();
  retry_queue.clear();
  findings.clear();
  entry_hashes_.clear();
  stream_entry_hashes_.clear();
  fingerprints_.clear();
  coverage = {};
  coverage_weighting = true;
  covered.clear();
  gap_hits.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "hdiff-campaign-state-v1") {
    error_ = "bad state header in " + state_path();
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error_ = "bad state line: " + line;
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string rest = line.substr(eq + 1);
    if (key == "config_sig") {
      config_sig = rest;
    } else if (key == "rounds_completed") {
      rounds_completed = to_size(rest);
    } else if (key == "covsig") {
      coverage.sig = rest;
    } else if (key == "covweight") {
      coverage_weighting = rest != "0";
    } else if (key == "covprod") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 3) {
        error_ = "bad covprod line: " + line;
        return false;
      }
      coverage.productions.push_back(
          {tokens[2], to_size(tokens[0]), tokens[1] != "0"});
    } else if (key == "covsite") {
      auto tokens = split_fields(rest);
      analysis::GapSite site;
      if (tokens.size() < 6 || tokens[3].size() != 1 ||
          !analysis::parse_byte_class_hex(tokens[4], &site.overlap)) {
        error_ = "bad covsite line: " + line;
        return false;
      }
      site.id = coverage.sites.size();
      site.production = to_size(tokens[0]);
      if (site.production >= coverage.productions.size()) {
        error_ = "covsite references unknown production: " + line;
        return false;
      }
      site.rule = coverage.productions[site.production].name;
      site.alt_a = to_size(tokens[1]);
      site.alt_b = to_size(tokens[2]);
      site.kind = tokens[3][0];
      site.width = site.overlap.count();
      site.rank = to_size(tokens[5]);
      site.witness = analysis::witness_bytes(site.overlap);
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        const std::size_t a = to_size(tokens[i]);
        if (a >= coverage.productions.size()) {
          error_ = "covsite related-production out of range: " + line;
          return false;
        }
        site.related.push_back(a);
      }
      coverage.sites.push_back(std::move(site));
    } else if (key == "covboot") {
      for (const auto& t : split_fields(rest)) {
        coverage.bootstrap_covered.insert(to_size(t));
      }
    } else if (key == "covered") {
      for (const auto& t : split_fields(rest)) covered.insert(to_size(t));
    } else if (key == "gaphit") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 2) {
        error_ = "bad gaphit line: " + line;
        return false;
      }
      gap_hits[to_size(tokens[0])] = to_size(tokens[1]);
    } else if (key == "entry") {
      auto tokens = split_fields(rest);
      CorpusEntry e;
      if (tokens.size() != 2 || !field_dec(tokens[1], &e.provenance)) {
        error_ = "bad entry line: " + line;
        return false;
      }
      e.hash = tokens[0];
      std::string spec_text;
      if (!read_file(corpus_path(e.hash), &spec_text) ||
          !deserialize_spec(spec_text, &e.spec)) {
        error_ = "cannot load corpus entry " + corpus_path(e.hash);
        return false;
      }
      entry_hashes_.insert(e.hash);
      entries.push_back(std::move(e));
    } else if (key == "sentry") {
      auto tokens = split_fields(rest);
      StreamEntry e;
      if (tokens.size() != 2 || !field_dec(tokens[1], &e.provenance)) {
        error_ = "bad sentry line: " + line;
        return false;
      }
      e.hash = tokens[0];
      std::string stream_text;
      if (!read_file(stream_corpus_path(e.hash), &stream_text) ||
          !stream::deserialize_stream(stream_text, &e.stream)) {
        error_ = "cannot load stream entry " + stream_corpus_path(e.hash);
        return false;
      }
      stream_entry_hashes_.insert(e.hash);
      stream_entries.push_back(std::move(e));
    } else if (key == "arm" || key == "sarm") {
      auto tokens = split_fields(rest);
      if (tokens.size() != 5) {
        error_ = "bad " + key + " line: " + line;
        return false;
      }
      ArmStats stats;
      stats.attempts = to_size(tokens[2]);
      stats.novel = to_size(tokens[3]);
      stats.cursor = to_size(tokens[4]);
      auto& table = key == "arm" ? arms : stream_arms;
      table[{to_size(tokens[0]), tokens[1]}] = stats;
    } else if (key == "retry") {
      auto tokens = split_fields(rest);
      RetryEntry r;
      if (tokens.size() != 4 || !field_dec(tokens[0], &r.provenance) ||
          !field_dec(tokens[1], &r.raw) || !field_dec(tokens[2], &r.spec_text) ||
          !field_dec(tokens[3], &r.description)) {
        error_ = "bad retry line: " + line;
        return false;
      }
      retry_queue.push_back(std::move(r));
    } else if (key == "finding") {
      auto tokens = split_fields(rest);
      Finding f;
      if (tokens.size() < 6 || !field_dec(tokens[2], &f.detector) ||
          !field_dec(tokens[3], &f.provenance) || !field_dec(tokens[4], &f.case_uuid) ||
          !field_dec(tokens[5], &f.description)) {
        error_ = "bad finding line: " + line;
        return false;
      }
      f.round = to_size(tokens[0]);
      f.fingerprint = tokens[1];
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        std::string component;
        if (!field_dec(tokens[i], &component)) {
          error_ = "bad finding line: " + line;
          return false;
        }
        f.vector.push_back(std::move(component));
      }
      fingerprints_.insert(f.fingerprint);
      findings.push_back(std::move(f));
    } else {
      error_ = "unknown state key: " + key;
      return false;
    }
  }
  return true;
}

bool StateStore::truncate_findings() const {
  // The checkpoint is the source of truth; regenerating the artifact from
  // it drops exactly the lines a crash appended after the last rename (and
  // heals a missing or damaged artifact the same way).  Content is
  // byte-identical to what the committed appends wrote.
  std::string out;
  for (const auto& f : findings) {
    out += finding_jsonl(f);
    out += "\n";
  }
  return write_file_atomic_durable(findings_path(), out);
}

bool StateStore::load() {
  std::string text;
  if (!read_file(state_path(), &text)) {
    error_ = "cannot read " + state_path();
    return false;
  }
  if (!parse_state(text)) return false;
  if (!truncate_findings()) {
    error_ = "cannot rewrite " + findings_path();
    return false;
  }
  return true;
}

bool StateStore::load_readonly() {
  std::string text;
  if (!read_file(state_path(), &text)) {
    error_ = "cannot read " + state_path();
    return false;
  }
  return parse_state(text);
}

bool StateStore::commit_round(std::size_t round) {
  rounds_completed = round + 1;
  if (!write_file_atomic_durable(state_path(), render_state())) {
    error_ = "cannot write " + state_path();
    return false;
  }
  return true;
}

}  // namespace hdiff::campaign
