#include "campaign/minimize.h"

#include <algorithm>
#include <utility>

#include "campaign/store.h"

namespace hdiff::campaign {
namespace {

std::size_t non_canonical_count(const http::RequestSpec& s) {
  std::size_t n = 0;
  if (s.sep1 != " ") ++n;
  if (s.sep2 != " ") ++n;
  if (s.line_terminator != "\r\n") ++n;
  if (s.headers_terminator != "\r\n") ++n;
  for (const auto& h : s.headers) {
    if (h.separator != ": ") ++n;
    if (h.terminator != "\r\n") ++n;
  }
  return n;
}

}  // namespace

std::pair<std::size_t, std::size_t> spec_measure(const http::RequestSpec& s) {
  return {non_canonical_count(s), serialize_spec(s).size()};
}

MinimizeOutcome minimize_spec(
    const http::RequestSpec& start,
    const std::function<bool(const http::RequestSpec&)>& still_interesting,
    const MinimizeOptions& options) {
  MinimizeOutcome out;
  out.spec = start;
  auto best_measure = spec_measure(out.spec);

  // Try one candidate: accept iff the oracle holds and the measure strictly
  // decreases.  Returns false (and leaves `out.spec` alone) otherwise.
  auto attempt = [&](http::RequestSpec candidate) {
    if (options.max_steps > 0 && out.steps >= options.max_steps) return false;
    const auto measure = spec_measure(candidate);
    if (measure >= best_measure) return false;  // no progress: skip oracle
    ++out.steps;
    if (!still_interesting(candidate)) return false;
    out.spec = std::move(candidate);
    best_measure = measure;
    ++out.accepted;
    return true;
  };
  auto exhausted = [&] {
    return options.max_steps > 0 && out.steps >= options.max_steps;
  };

  bool progressed = true;
  while (progressed && !exhausted()) {
    progressed = false;

    // ---- pass 1: ddmin over the header list ------------------------------
    // Remove chunks of headers, starting with half the list and halving the
    // chunk size down to single headers.
    for (std::size_t chunk = std::max<std::size_t>(out.spec.headers.size() / 2,
                                                   1);
         chunk >= 1 && !out.spec.headers.empty() && !exhausted();
         chunk /= 2) {
      bool removed_any = true;
      while (removed_any && !exhausted()) {
        removed_any = false;
        for (std::size_t at = 0;
             at + chunk <= out.spec.headers.size() && !exhausted();) {
          http::RequestSpec candidate = out.spec;
          candidate.headers.erase(
              candidate.headers.begin() + static_cast<std::ptrdiff_t>(at),
              candidate.headers.begin() + static_cast<std::ptrdiff_t>(at) +
                  static_cast<std::ptrdiff_t>(chunk));
          if (attempt(std::move(candidate))) {
            removed_any = true;
            progressed = true;
            // retry the same position: the next chunk shifted into it
          } else {
            ++at;
          }
        }
      }
      if (chunk == 1) break;
    }

    // ---- pass 2: body ----------------------------------------------------
    if (!out.spec.body.empty() && !exhausted()) {
      http::RequestSpec candidate = out.spec;
      candidate.body.clear();
      if (attempt(std::move(candidate))) {
        progressed = true;
      } else {
        candidate = out.spec;
        candidate.body.resize(candidate.body.size() / 2);
        if (attempt(std::move(candidate))) progressed = true;
      }
    }

    // ---- pass 3: canonicalize syntax elements ----------------------------
    auto canonicalize = [&](auto&& mutate_spec) {
      http::RequestSpec candidate = out.spec;
      mutate_spec(candidate);
      if (attempt(std::move(candidate))) progressed = true;
    };
    if (!exhausted())
      canonicalize([](http::RequestSpec& s) { s.sep1 = " "; });
    if (!exhausted())
      canonicalize([](http::RequestSpec& s) { s.sep2 = " "; });
    if (!exhausted())
      canonicalize([](http::RequestSpec& s) { s.line_terminator = "\r\n"; });
    if (!exhausted())
      canonicalize([](http::RequestSpec& s) { s.headers_terminator = "\r\n"; });
    for (std::size_t i = 0; i < out.spec.headers.size() && !exhausted(); ++i) {
      canonicalize([i](http::RequestSpec& s) { s.headers[i].separator = ": "; });
      canonicalize(
          [i](http::RequestSpec& s) { s.headers[i].terminator = "\r\n"; });
    }

    // ---- pass 4: shrink header values ------------------------------------
    for (std::size_t i = 0; i < out.spec.headers.size() && !exhausted(); ++i) {
      const std::string& value = out.spec.headers[i].value;
      if (value.size() < 2) continue;
      http::RequestSpec candidate = out.spec;
      candidate.headers[i].value = value.substr(0, value.size() / 2);
      if (attempt(std::move(candidate))) {
        progressed = true;
        --i;  // keep shrinking the same value
        continue;
      }
      candidate = out.spec;
      candidate.headers[i].value = value.substr(value.size() / 2);
      if (attempt(std::move(candidate))) {
        progressed = true;
        --i;
      }
    }
  }
  return out;
}

}  // namespace hdiff::campaign
