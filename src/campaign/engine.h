// Persistent differential-fuzzing campaign engine (the subsystem's round
// loop; paper §V: "the tool can be run periodically").
//
// A campaign is a sequence of rounds against a fixed fleet:
//
//   round 0      executes the bootstrap corpus (the exact one-shot `hdiff
//                run` case list), so the campaign's findings are a superset
//                of a one-shot run by construction;
//   round 1..N   replay the quarantine retry queue, then fire the mutants
//                the divergence-feedback scheduler allocated across
//                (corpus entry x MutationKind) arms.
//
// Every per-case delta (via ExecutorConfig::on_delta) is fingerprinted;
// novel fingerprints become findings, and the mutant that produced one is
// "interesting": it is delta-debug minimized and joins the corpus as a new
// mutation seed for later rounds.  After each round the engine appends the
// round's findings to findings.jsonl and then atomically publishes the
// checkpoint; a kill at any point resumes to byte-identical state (the
// `hdiff selftest --campaign` proof).
//
// Determinism: rounds depend only on the checkpoint (scheduler weights,
// cursors, retry queue) and the deterministic model fleet — no wall clock,
// no RNG — and the executor merges per-case results in stable index order,
// so state and findings bytes are identical across `--jobs` settings.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "campaign/fingerprint.h"
#include "campaign/minimize.h"
#include "campaign/store.h"
#include "core/executor.h"
#include "core/testcase.h"
#include "impls/model.h"
#include "obs/obs.h"
#include "stream/seeds.h"

namespace hdiff::campaign {

/// A named mutation seed (joins the corpus as "seed:<name>").
struct SeedSpec {
  std::string name;
  http::RequestSpec spec;
};

struct CampaignConfig {
  std::string state_dir;
  /// Mutation rounds to run (round 0, the bootstrap pass, is extra).
  std::size_t rounds = 5;
  /// Mutants fired per mutation round.
  std::size_t budget_per_round = 96;
  /// Minimize each newly-interesting mutant before storing it.
  bool minimize_new = true;
  MinimizeOptions minimize;
  /// Executor settings for every round (jobs, memoize, retry policy).  The
  /// engine installs its own cross-round caches and delta tap on top.
  core::ExecutorConfig executor;
  obs::Observability obs;

  /// One-shot case list executed as round 0.  Must be reproducible across
  /// resumes (the CLI regenerates it; generation is deterministic).
  std::vector<core::TestCase> bootstrap;
  /// Initial mutation seeds.  Empty = default_campaign_seeds().
  std::vector<SeedSpec> seeds;

  /// Connection-level stream fuzzing (src/stream).  When enabled, round 1
  /// observes every stream seed whole, and later rounds spend
  /// `stream_budget_per_round` across (stream entry x StreamMutationKind)
  /// arms on top of the single-request budget.  The stream fields join the
  /// config signature only when `streams` is true, so existing state dirs
  /// resume untouched by the feature's existence.
  bool streams = false;
  /// Initial stream seeds.  Empty = stream::default_stream_seeds().
  std::vector<stream::StreamSeed> stream_seeds;
  std::size_t stream_budget_per_round = 16;

  /// Static coverage plan to adopt on fresh starts (DESIGN.md §14).  Empty
  /// = coverage off.  Excluded from campaign_config_sig like jobs/rounds:
  /// an existing checkpoint's own (possibly absent) plan always wins, so
  /// pre-coverage state dirs resume untouched.
  analysis::CoveragePlan coverage;
  /// Scheduler uses the coverage terms (false = track + report only, the
  /// E15 control arm).  Adopted with the plan; checkpoint wins thereafter.
  bool coverage_weighting = true;

  /// Test hook: simulate a kill after this round appended its findings but
  /// before the checkpoint rename (the worst crash window).  -1 = never.
  int crash_after_round = -1;
};

/// Per-round accounting for the report and the JSON block.
struct RoundReport {
  std::size_t round = 0;
  std::size_t cases = 0;        ///< cases executed this round
  std::size_t replayed = 0;     ///< retry-queue replays among them
  std::size_t novel = 0;        ///< novel fingerprints filed
  std::size_t duplicate = 0;    ///< signatures deduplicated away
  std::size_t quarantined = 0;  ///< cases pushed to the retry queue
  std::size_t new_entries = 0;  ///< interesting mutants added to the corpus
  std::size_t minimize_steps = 0;
  /// Cumulative coverage state after this round (0/0 when coverage is off).
  std::size_t coverage_covered = 0;  ///< productions exercised so far
  std::size_t gap_sites_hit = 0;     ///< distinct gap sites hit so far
};

struct CampaignReport {
  std::vector<RoundReport> rounds;  ///< rounds executed by THIS call
  std::size_t rounds_completed = 0;
  std::size_t total_findings = 0;
  std::size_t corpus_entries = 0;
  std::size_t stream_entries = 0;    ///< stream-corpus members (0 = off)
  std::size_t retry_depth = 0;       ///< retry queue length at exit
  bool resumed = false;              ///< picked up an existing checkpoint
  bool interrupted = false;          ///< stopped by crash_after_round
  std::size_t novel_total = 0;       ///< this call's novel fingerprints
  std::size_t duplicate_total = 0;   ///< this call's deduplicated signatures
  /// Accumulated detection result of round 0, exactly what a one-shot
  /// `hdiff run` over the bootstrap corpus returns (empty when round 0 was
  /// already committed before this call).
  core::DetectionResult bootstrap_findings;
  // ---- coverage totals (zeros when the campaign has no plan) ----
  bool coverage_enabled = false;
  bool coverage_weighting = false;
  std::size_t coverage_covered = 0;   ///< productions exercised
  std::size_t coverage_total = 0;     ///< productions in the plan
  std::size_t gap_sites_hit = 0;      ///< distinct gap sites hit
  std::size_t gap_sites_total = 0;    ///< gap sites in the plan
  /// Highest-ranked sites not yet hit (top 5, rank order) — the "where to
  /// aim next" list in `hdiff campaign status` and the JSON block.
  std::vector<analysis::GapSite> top_unhit;
  std::string error;  ///< non-empty = the campaign failed to run
};

/// Default mutation seeds: canonical requests exercising the framing,
/// routing, and caching surfaces the detectors watch.
std::vector<SeedSpec> default_campaign_seeds();

/// Signature of everything that must match for a checkpoint to be resumed:
/// seeds, bootstrap corpus, and budget.  Jobs and round count are excluded
/// on purpose (resuming with more rounds or different parallelism is
/// legitimate and changes nothing already committed).
std::string campaign_config_sig(const CampaignConfig& config);

// ---- round reentry hooks (shared by CampaignEngine::run and hdiff serve) --
//
// A round decomposes into three pure-ish stages:
//
//   plan_round       checkpoint -> deterministic case list (mutates the
//                    in-memory retry queue and arm cursors exactly as the
//                    classic loop did — commit publishes the mutation);
//   execute_round    case list -> per-case outcomes (no store access at
//                    all, so it can run in a sharded worker process against
//                    a read-only checkpoint copy);
//   integrate_round  outcomes -> findings / arm feedback / corpus growth
//                    (store-mutating; single writer).
//
// Because the plan is a pure function of the committed checkpoint and the
// config, a worker that loads the same checkpoint computes the *same* plan
// as its supervisor, executes only the case indices its shard owns, and
// ships back outcomes the supervisor merges in stable index order — byte-
// identical, by construction, to a single-process run.

/// One planned case with its deterministic bookkeeping.
struct PlannedCase {
  core::TestCase tc;
  std::string provenance;
  /// Arm this case's observation feeds back into; entry index == npos for
  /// bootstrap cases and unattributable replays.
  std::size_t arm_entry = static_cast<std::size_t>(-1);
  std::string arm_kind;
  /// Buildable form (empty spec_text = bootstrap case, wire bytes only).
  http::RequestSpec spec;
  std::string spec_text;
  /// Coverage attribution (empty when coverage is off or the case is a
  /// bootstrap/replay): production ids this mutant exercises and gap-site
  /// ids whose overlap class its injected payload intersects.
  std::vector<std::size_t> cov_ids;
  std::vector<std::size_t> gap_ids;
  /// Stream cases: observed via Chain::observe_stream and evaluated by the
  /// stream::StreamDetector family instead of the single-request path.
  /// `tc.raw` holds the concatenated wire (so sharding and memo keys need
  /// no special casing); `spec_text` holds serialize_stream().
  bool is_stream = false;
  stream::RequestStream stream;
};

struct RoundPlan {
  std::vector<PlannedCase> cases;
  std::size_t replayed = 0;  ///< retry-queue replays at the head of `cases`
};

/// Plan round `round` from the loaded checkpoint.  Round 0 is the bootstrap
/// pass; later rounds replay the retry queue then spend the mutation
/// budget.  Mutates `store` in memory (retry queue drained, arm cursors
/// advanced) — nothing is published until commit_round.
RoundPlan plan_round(StateStore& store, const CampaignConfig& config,
                     std::size_t round);

/// What executing one planned case produced — everything integrate_round
/// needs, and small enough to ship across a process boundary (serve shard
/// result files).
struct CaseOutcome {
  bool executed = false;     ///< false = not run (another shard owns it)
  bool quarantined = false;  ///< faulted out; goes back to the retry queue
  std::vector<Signature> signatures;
};

struct ExecutedRound {
  /// One slot per planned case, index-aligned with the plan.
  std::vector<CaseOutcome> outcomes;
  /// Accumulated detection result of the executed cases (round 0's is the
  /// one-shot-equivalence proof); empty when a subset was executed.
  core::DetectionResult total;
  core::ExecutorStats stats;
};

/// Execute the planned cases (all of them, or only the indices in `subset`)
/// through the PR-1 executor with the campaign's caches and delta tap.
/// Store-free and side-effect-free apart from the caches.
ExecutedRound execute_round(const CampaignConfig& config,
                            const net::Chain& chain,
                            const std::vector<PlannedCase>& planned,
                            core::ObservationMemo* memo,
                            net::VerdictCache* verdicts,
                            const std::vector<std::size_t>* subset = nullptr);

/// Fingerprint, deduplicate, feed the scheduler arms, minimize and store
/// interesting mutants.  Every outcome must have `executed == true`.
/// Returns the round's accounting (novel/duplicate/quarantined/new_entries/
/// minimize_steps; round/cases/replayed are the caller's).  `chain`,
/// `memo` and `verdicts` serve the minimizer oracle.
RoundReport integrate_round(StateStore& store, const CampaignConfig& config,
                            std::size_t round,
                            const std::vector<PlannedCase>& planned,
                            const std::vector<CaseOutcome>& outcomes,
                            const net::Chain& chain,
                            core::ObservationMemo* memo,
                            net::VerdictCache* verdicts);

/// (Re-)register the config's mutation seeds as corpus entries; idempotent,
/// called on every fresh start (rounds_completed == 0).
void register_seed_entries(StateStore& store, const CampaignConfig& config);

/// Stream counterpart: register the config's stream seeds (or the
/// defaults) as stream-corpus entries.  No-op unless `config.streams`.
void register_stream_seed_entries(StateStore& store,
                                  const CampaignConfig& config);

/// Adopt the config's coverage plan into the store.  A checkpoint that
/// already carries a plan wins (resume byte-identity); a config without a
/// plan never erases one.  On a fresh adopt the bootstrap cone seeds the
/// covered set.  Called after init/load by run() and the serve supervisor.
void adopt_coverage(StateStore& store, const CampaignConfig& config);

/// Fold one round's accounting into the hdiff_campaign_* metrics.
void emit_round_metrics(const obs::Observability& obs, const RoundReport& rr,
                        const StateStore& store);

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignConfig config);

  /// Run (or resume) the campaign against `fleet` until
  /// `config.rounds + 1` total rounds are committed.  On config-signature
  /// mismatch with an existing checkpoint, fails without touching it.
  CampaignReport run(
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet);

  /// Read-only view of an existing campaign state dir.
  static CampaignReport status(const std::string& state_dir);

  /// Re-minimize every mutant entry in an existing campaign (fixed-point
  /// check: a committed corpus accepts no further shrinking, so this
  /// reports steps but rewrites nothing).  Returns oracle steps taken and
  /// how many entries actually shrank (expected 0).
  struct MinimizeReport {
    std::size_t entries = 0;
    std::size_t steps = 0;
    std::size_t shrunk = 0;
    std::string error;
  };
  static MinimizeReport minimize_corpus(
      const std::string& state_dir,
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet);

 private:
  CampaignConfig config_;
};

/// Render a CampaignReport (plus store totals) as the `"campaign"` JSON
/// block written by `hdiff campaign ... --json`.
std::string campaign_report_json(const CampaignReport& report);

}  // namespace hdiff::campaign
