#include "campaign/fingerprint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace hdiff::campaign {
namespace {

void sort_unique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::string Signature::canonical() const {
  std::string out = detector;
  out += ':';
  for (std::size_t i = 0; i < vector.size(); ++i) {
    if (i) out += ',';
    out += vector[i];
  }
  return out;
}

std::vector<Signature> signatures_of(const core::DetectionResult& delta) {
  std::vector<Signature> out;

  Signature sr;
  sr.detector = "sr-violation";
  for (const auto& v : delta.violations) {
    sr.vector.push_back(v.impl + "|" + v.sr_id);
  }
  if (!sr.vector.empty()) {
    sort_unique(sr.vector);
    out.push_back(std::move(sr));
  }

  // One signature per attack class present among the pair findings, so a
  // case that trips both HRS and CPDoS files two findings (they are
  // different detectors and, operationally, different bugs to chase).
  for (core::AttackClass attack :
       {core::AttackClass::kHrs, core::AttackClass::kHot,
        core::AttackClass::kCpdos, core::AttackClass::kGeneric}) {
    Signature sig;
    sig.detector = std::string(to_string(attack));
    for (const auto& p : delta.pairs) {
      if (p.attack != attack) continue;
      sig.vector.push_back(p.front + "->" + p.back);
    }
    if (!sig.vector.empty()) {
      sort_unique(sig.vector);
      out.push_back(std::move(sig));
    }
  }

  if (delta.discrepancies.inputs_with_discrepancy > 0) {
    Signature d;
    d.detector = "discrepancy";
    if (delta.discrepancies.status_disagreements > 0)
      d.vector.push_back("status");
    if (delta.discrepancies.host_disagreements > 0) d.vector.push_back("host");
    if (delta.discrepancies.body_disagreements > 0) d.vector.push_back("body");
    sort_unique(d.vector);
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Signature> signatures_of_stream(
    const stream::StreamDetectionResult& result) {
  std::vector<Signature> out;
  for (const auto& f : result.findings) {
    Signature sig;
    sig.detector = f.detector;
    sig.vector = f.components;
    out.push_back(std::move(sig));
  }
  return out;
}

std::string hex64(std::string_view bytes) {
  // FNV-1a 64-bit; mirrors core::fnv1a64 but kept local so the campaign
  // library's key format is frozen independently of executor internals.
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string fingerprint(const Signature& sig, const std::string& provenance) {
  return hex64(sig.canonical() + "#" + provenance);
}

}  // namespace hdiff::campaign
