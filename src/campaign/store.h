// Persistent campaign state: content-addressed corpus + append-only
// findings DB + crash-safe checkpoint.
//
// State-dir layout:
//
//   <state-dir>/campaign.state    checkpointed state (the source of truth):
//                                 config signature, committed round count,
//                                 corpus entry list, scheduler arm stats,
//                                 quarantine retry queue, and every finding.
//                                 Written tmp+rename, so a kill at any point
//                                 leaves either the previous or the next
//                                 checkpoint, never a torn file.
//   <state-dir>/corpus/<h>.case   one request spec per file, named by the
//                                 16-hex-digit content address of its
//                                 serialized form.  Writes are idempotent
//                                 (same content -> same bytes at the same
//                                 path), so replaying an interrupted round
//                                 rewrites them identically.
//   <state-dir>/corpus/<h>.stream one request *stream* per file (stream
//                                 seeds and interesting stream mutants),
//                                 serialize_stream form, same idempotent
//                                 content-addressed discipline.
//   <state-dir>/findings.jsonl    append-only JSON-lines artifact, one
//                                 finding per line, round-tagged.  Lines for
//                                 rounds newer than the checkpoint (a crash
//                                 hit between append and rename) are
//                                 truncated away on load, which is what
//                                 makes resume byte-identical to an
//                                 uninterrupted run.
//   <state-dir>/lock              flock(2) advisory lock taken by every
//                                 writer (engine run, serve supervisor).  A
//                                 second writer pointed at the same dir gets
//                                 a structured refusal instead of corrupting
//                                 the append-only artifact.
//
// Everything is line-based text with hex-encoded payload fields (reusing
// core::hex_encode), so specs with NUL/CTL bytes survive and the files diff
// cleanly under version control.
//
// Durability: checkpoint and corpus writes go through
// `write_file_atomic_durable`, which fsyncs the tmp file *and* the parent
// directory around the rename, so a power-loss-style kill cannot surface an
// empty or partial checkpoint (the classic rename-without-fsync hole).
// findings.jsonl appends are deliberately not fsynced: the checkpoint is
// the source of truth and load() regenerates the artifact from it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/coverage.h"
#include "core/specwire.h"
#include "http/serialize.h"
#include "stream/model.h"

namespace hdiff::campaign {

/// One corpus member: a mutation seed ("seed:<name>") or an interesting
/// mutant ("mutant:<seed-hash>:<kind>"), stored as a buildable spec so it
/// can be mutated further in later rounds.
struct CorpusEntry {
  std::string hash;        ///< content address of the serialized spec
  std::string provenance;
  http::RequestSpec spec;
};

/// One stream-corpus member: a connection-level seed ("stream-seed:<name>")
/// or an interesting stream mutant ("stream-mutant:<seed-hash>:<kind>"),
/// stored as corpus/<hash>.stream in serialize_stream form so splice/
/// reorder/duplicate/drop operators can keep working on it in later rounds.
struct StreamEntry {
  std::string hash;  ///< content address of the serialized stream
  std::string provenance;
  stream::RequestStream stream;
};

/// One deduplicated finding (see campaign/fingerprint.h for the key).
struct Finding {
  std::size_t round = 0;
  std::string fingerprint;
  std::string detector;
  std::vector<std::string> vector;  ///< normalized divergence components
  std::string provenance;
  std::string case_uuid;    ///< first case that hit this fingerprint
  std::string description;  ///< that case's human-readable synopsis
};

/// A case that exhausted its retries under harness faults; replayed at the
/// start of the next round (PR-2 quarantine integration).  `spec_text` is
/// empty for bootstrap cases, which exist only as wire bytes.
struct RetryEntry {
  std::string provenance;
  std::string raw;
  std::string spec_text;  ///< serialize_spec() form, "" when unavailable
  std::string description;
};

/// Divergence-feedback statistics for one scheduler arm (corpus entry x
/// mutation kind); persisted so the schedule is a pure function of the
/// checkpoint.
struct ArmStats {
  std::size_t attempts = 0;  ///< mutants of this arm actually observed
  std::size_t novel = 0;     ///< novel fingerprints those mutants produced
  std::size_t cursor = 0;    ///< next variant index (rotation)
};

// The line-based wire helpers (field encoding, spec serialization) moved
// down to core/specwire.h so src/stream can use them without a dependency
// cycle; the campaign names stay valid for every existing call site.
using core::deserialize_spec;
using core::field_dec;
using core::field_enc;
using core::serialize_spec;
using core::split_fields;

/// Content address: fingerprint-format hash of `serialize_spec(spec)`.
/// Keyed on the serialized spec rather than the wire bytes so two specs
/// that happen to concatenate to the same wire form keep distinct files.
std::string content_address(const http::RequestSpec& spec);

/// Content address of a stream: hash of `serialize_stream(stream)` — keyed
/// on the per-message structure, so two streams whose messages concatenate
/// to identical wire bytes keep distinct corpus files.
std::string stream_content_address(const stream::RequestStream& stream);

/// Durable tmp+rename publish: writes `path + ".tmp"`, fsyncs it, renames
/// it over `path`, and fsyncs the parent directory so the rename itself
/// survives a power loss.  Readers see the old bytes or the new bytes,
/// never a torn prefix; a stale/torn tmp file left by an earlier crash is
/// simply overwritten.
bool write_file_atomic_durable(const std::string& path,
                               std::string_view content);

/// In-memory image of the state dir plus the commit protocol.
class StateStore {
 public:
  explicit StateStore(std::string state_dir);
  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// True when a checkpoint file exists.
  bool exists() const;

  /// Take the exclusive writer lock (flock on `<dir>/lock`, creating the
  /// directory if needed).  Non-blocking: returns false with error() set
  /// when another process (or another StateStore in this process) holds
  /// it.  flock is per open file description, so the refusal is testable
  /// single-process.  Released by release_lock() or the destructor.
  bool acquire_lock();
  void release_lock();
  bool locked() const noexcept { return lock_fd_ >= 0; }

  /// Create the directory layout for a fresh campaign.
  bool init(const std::string& config_sig);

  /// Load the checkpoint, the corpus files it references, and truncate
  /// findings.jsonl back to the committed round count.
  bool load();

  /// Load without healing findings.jsonl and without requiring the lock —
  /// the observer path (`campaign status`) and serve workers, which read
  /// the supervisor-owned master checkpoint while the supervisor may be
  /// appending to the artifact.
  bool load_readonly();

  /// Append an entry (writes its corpus file immediately; idempotent).
  /// Returns the entry index, or the existing index for a duplicate hash.
  std::size_t add_entry(CorpusEntry entry);
  bool has_entry(const std::string& hash) const;

  /// Stream-corpus counterpart of add_entry/has_entry (writes
  /// corpus/<hash>.stream; idempotent).
  std::size_t add_stream_entry(StreamEntry entry);
  bool has_stream_entry(const std::string& hash) const;

  /// Record a finding and append its JSON line to findings.jsonl.  The
  /// jsonl append happens before the checkpoint rename; a crash in between
  /// is healed by load()'s truncation.
  void add_finding(Finding f);
  bool known_fingerprint(const std::string& fp) const {
    return fingerprints_.count(fp) > 0;
  }

  /// Atomically publish the state with `rounds_completed = round + 1`.
  bool commit_round(std::size_t round);

  // ---- checkpointed state (mutated by the engine between commits) ----
  std::string config_sig;
  std::size_t rounds_completed = 0;  ///< committed rounds (round 0 = first)
  std::vector<CorpusEntry> entries;
  std::map<std::pair<std::size_t, std::string>, ArmStats> arms;
  /// Stream corpus and its (stream entry x StreamMutationKind) arms.  Both
  /// serialize as their own checkpoint keys (sentry=/sarm=), so a campaign
  /// without streams renders a byte-identical checkpoint to one built
  /// before the stream subsystem existed.
  std::vector<StreamEntry> stream_entries;
  std::map<std::pair<std::size_t, std::string>, ArmStats> stream_arms;
  std::vector<RetryEntry> retry_queue;
  std::vector<Finding> findings;
  /// Static coverage plan (DESIGN.md §14), serialized into the checkpoint
  /// so resumed and sharded runs see byte-identical production/site ids.
  /// Empty plan (the default, and any checkpoint written before coverage
  /// existed) means coverage is disabled — the healed upgrade path.
  analysis::CoveragePlan coverage;
  /// When false the plan is tracked and reported but the scheduler ignores
  /// the uncovered/gap terms (the E15 control arm).
  bool coverage_weighting = true;
  std::set<std::size_t> covered;                 ///< production ids exercised
  std::map<std::size_t, std::size_t> gap_hits;   ///< site id -> hit count
  bool coverage_enabled() const { return coverage.enabled(); }

  const std::string& state_dir() const { return dir_; }
  const std::string& error() const { return error_; }

  /// Paths (exposed for tests and the selftest's byte-identity check).
  std::string state_path() const;
  std::string findings_path() const;
  std::string corpus_path(const std::string& hash) const;
  std::string stream_corpus_path(const std::string& hash) const;
  std::string lock_path() const;

 private:
  bool write_corpus_file(const CorpusEntry& entry);
  bool write_stream_corpus_file(const StreamEntry& entry);
  std::string render_state() const;
  bool parse_state(std::string_view text);
  bool truncate_findings() const;

  std::string dir_;
  std::string error_;
  int lock_fd_ = -1;
  std::set<std::string> entry_hashes_;
  std::set<std::string> stream_entry_hashes_;
  std::set<std::string> fingerprints_;
};

/// Render one finding as its findings.jsonl line (no trailing newline).
/// The line starts with the round field so truncation can parse it cheaply.
std::string finding_jsonl(const Finding& f);

}  // namespace hdiff::campaign
