// Divergence-feedback mutation scheduling.
//
// Each scheduler *arm* is one (corpus entry, MutationKind) pair.  The
// engine asks for a per-round allocation of the mutation budget across
// arms; the allocation is proportional to each arm's recent novel-signature
// yield and is a pure function of the persisted arm statistics — no wall
// clock, no RNG — so a resumed campaign and a `--jobs 8` campaign schedule
// the exact same mutants as a fresh serial one.
//
// Weighting: integer-only,
// `weight = ((1 + novel + uncovered + gap_hits) << 16) / (1 + attempts)`.
// An untried arm (0/0) gets full weight, so new corpus entries are explored
// immediately; an arm that keeps yielding keeps its share; an arm that has
// been hammered without yield decays as 1/attempts but never reaches zero
// (every arm stays live — yield can appear late, e.g. after a fleet swap).
// The static-analysis terms (DESIGN.md §14) bias the split toward arms that
// would touch not-yet-covered grammar productions (`uncovered`) or ranked
// semantic-gap sites (`gap_hits`); both default to zero, which reduces the
// weight to the legacy feedback formula when coverage is off.  Budget
// shares use largest-remainder apportionment with per-arm capacity caps and
// index-order tie-breaks, so every unit of budget lands deterministically.
#pragma once

#include <cstddef>
#include <vector>

namespace hdiff::campaign {

/// Scheduler view of one arm.
struct ArmView {
  std::size_t attempts = 0;  ///< mutants observed so far
  std::size_t novel = 0;     ///< novel fingerprints produced so far
  std::size_t capacity = 0;  ///< variants available this round (hard cap)
  /// Coverage bias terms (zero unless the campaign has a coverage plan and
  /// weighting enabled — see campaign::StateStore::coverage_weighting).
  std::size_t uncovered = 0;  ///< uncovered productions this arm would touch
  std::size_t gap_hits = 0;   ///< unhit gap sites this arm can reach
};

/// Integer feedback weight of one arm (see header comment).
std::size_t arm_weight(const ArmView& arm);

/// Split `budget` across `arms` proportionally to `arm_weight`, capped at
/// each arm's capacity.  Returns one count per arm, summing to
/// `min(budget, total capacity)`.  Deterministic: largest-remainder
/// apportionment, ties broken by lower arm index; spill from capped arms is
/// re-apportioned over the rest.
std::vector<std::size_t> allocate_budget(std::size_t budget,
                                         const std::vector<ArmView>& arms);

}  // namespace hdiff::campaign
