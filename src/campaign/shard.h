// Sharded round execution: deterministic case->shard assignment and the
// durable shard result files the `hdiff serve` supervisor merges.
//
// Assignment is a pure function of the case's wire bytes (FNV-1a64 mod
// shard count), so the supervisor and every worker — each holding its own
// copy of the same committed checkpoint — partition the identical planned
// case list identically, with no coordination.  Duplicate wire bytes land
// on the same shard, which keeps each worker's observation memo as warm as
// the single-process engine's.
//
// A worker publishes its outcomes as one result file per (round, shard),
// written with the store's durable tmp+rename protocol: the supervisor sees
// a complete result or none at all, never a torn one.  The header pins
// round, shard, shard count and config signature, so a stale file from an
// earlier daemon generation (different config, different shard split) is
// rejected instead of merged; a valid file left behind by a crashed
// supervisor is *reused* on restart, which is what makes a supervisor kill
// at any instant resume with zero lost and zero duplicated work.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/engine.h"
#include "core/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdiff::campaign {

/// Which shard owns the case with these wire bytes (fnv1a64(raw) % shards;
/// shards == 0 is treated as 1).
std::size_t shard_of(std::string_view raw, std::size_t shards) noexcept;

/// The indices of `planned` owned by `shard` (stable ascending order).
std::vector<std::size_t> shard_indices(const std::vector<PlannedCase>& planned,
                                       std::size_t shard, std::size_t shards);

/// One worker's published outcomes for one (round, shard).
struct ShardResult {
  std::size_t round = 0;
  std::size_t shard = 0;
  std::size_t shards = 0;     ///< total shard count the plan was split by
  std::string config_sig;     ///< campaign config signature of the plan
  /// Executor degradation counters from the worker (satellite: surfaced
  /// live on /status).  Per-case quarantine flags travel in `outcomes`.
  std::size_t faulted_attempts = 0;
  std::size_t retry_attempts = 0;
  std::size_t recovered_cases = 0;
  std::size_t quarantined_cases = 0;
  /// Planned-case index -> outcome, only for indices this shard executed.
  std::map<std::size_t, CaseOutcome> outcomes;
  /// Optional cross-process observability payload: the worker's metrics
  /// snapshot and trace-span buffer ride inside the same durable result
  /// file, so observability arrives exactly-once with the outcomes it
  /// describes — a killed worker's partial counts die with it and the
  /// re-executed shard's replace them.  Histogram quantile fields are not
  /// serialized (they are derived presentation); a parsed snapshot carries
  /// name/sum/count/bounds/buckets only.
  obs::Registry::Snapshot metrics;
  std::uint32_t trace_pid = 0;  ///< OS pid that produced `trace` (0 = none)
  std::vector<obs::TraceEvent> trace;
};

/// Canonical result path: `<state-dir>/shards/round-<r>-shard-<k>.result`.
std::string shard_result_path(const std::string& state_dir, std::size_t round,
                              std::size_t shard);

/// Serialize / parse the result file (line-based, hex payload fields like
/// the checkpoint).  `parse_shard_result` returns false on any malformed or
/// torn content.
std::string render_shard_result(const ShardResult& result);
bool parse_shard_result(std::string_view text, ShardResult* out);

/// Durable publish (tmp+fsync+rename; creates `<state-dir>/shards/`).
bool write_shard_result(const std::string& state_dir,
                        const ShardResult& result);

/// Load and validate a result file against the expected round/shard
/// split/config.  Returns false when missing, torn, or from a different
/// plan (stale daemon generation).
bool load_shard_result(const std::string& state_dir, std::size_t round,
                       std::size_t shard, std::size_t shards,
                       const std::string& config_sig, ShardResult* out);

/// Merge per-shard outcome maps into one index-aligned outcome vector for
/// integrate_round.  Returns false (and reports the first hole in
/// `*missing`) when some planned index was executed by no shard.
bool merge_shard_outcomes(const std::vector<ShardResult>& results,
                          std::size_t planned_cases,
                          std::vector<CaseOutcome>* out,
                          std::size_t* missing);

}  // namespace hdiff::campaign
