#include "report/json.h"

#include <cstdio>

namespace hdiff::report {

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += json_string(k);
  out_ += ':';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += json_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma();
  out_ += fragment;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

}  // namespace hdiff::report
