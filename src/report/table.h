// ASCII table / matrix rendering for experiment binaries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hdiff::report {

/// Simple column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a header rule and column padding.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a front-end × back-end matrix (Figure 7 style): cell content is
/// the concatenation of single-letter attack markers, "." when empty.
std::string render_pair_matrix(
    const std::vector<std::string>& fronts,
    const std::vector<std::string>& backs,
    const std::vector<std::pair<std::string, std::string>>& hrs,
    const std::vector<std::pair<std::string, std::string>>& hot,
    const std::vector<std::pair<std::string, std::string>>& cpdos);

/// "front->back" keys to pairs.
std::vector<std::pair<std::string, std::string>> parse_pair_keys(
    const std::vector<std::string>& keys);

}  // namespace hdiff::report
