// Minimal JSON writer (no external dependencies) used by the findings
// exporter.  Produces compact, correctly escaped JSON; the writer is a small
// streaming builder, not a DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hdiff::report {

/// Escape and quote a string per RFC 8259 (UTF-8 passthrough; control bytes
/// as \u00XX).
std::string json_string(std::string_view s);

/// Streaming JSON builder with explicit structure calls.  Misuse (e.g. a key
/// outside an object) is the caller's bug; the builder keeps enough state to
/// insert commas correctly but does not validate nesting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key (call before the value inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);

  /// Splice a pre-rendered JSON fragment in value position.  The fragment
  /// must itself be valid JSON; the writer only manages the surrounding
  /// comma state (used to embed sub-reports built by other layers).
  JsonWriter& raw(std::string_view fragment);

  const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace hdiff::report
