#include "report/table.h"

#include <algorithm>

namespace hdiff::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += " |";
    }
    out += '\n';
    return out;
  };
  std::string rule = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_pair_keys(
    const std::vector<std::string>& keys) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& key : keys) {
    std::size_t arrow = key.find("->");
    if (arrow == std::string::npos) continue;
    out.emplace_back(key.substr(0, arrow), key.substr(arrow + 2));
  }
  return out;
}

std::string render_pair_matrix(
    const std::vector<std::string>& fronts,
    const std::vector<std::string>& backs,
    const std::vector<std::pair<std::string, std::string>>& hrs,
    const std::vector<std::pair<std::string, std::string>>& hot,
    const std::vector<std::pair<std::string, std::string>>& cpdos) {
  auto has = [](const std::vector<std::pair<std::string, std::string>>& set,
                const std::string& f, const std::string& b) {
    return std::any_of(set.begin(), set.end(), [&](const auto& p) {
      return p.first == f && p.second == b;
    });
  };
  Table table([&] {
    std::vector<std::string> header{"front\\back"};
    header.insert(header.end(), backs.begin(), backs.end());
    return header;
  }());
  for (const auto& f : fronts) {
    std::vector<std::string> row{f};
    for (const auto& b : backs) {
      std::string cell;
      if (has(hrs, f, b)) cell += 'S';    // Smuggling
      if (has(hot, f, b)) cell += 'H';    // Host of Troubles
      if (has(cpdos, f, b)) cell += 'C';  // CPDoS
      if (cell.empty()) cell = ".";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table.render() +
         "  S = HRS-affected, H = HoT-affected, C = CPDoS-affected pair\n";
}

}  // namespace hdiff::report
