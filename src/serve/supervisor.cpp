#include "serve/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "campaign/shard.h"
#include "campaign/store.h"
#include "net/chain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/flight.h"
#include "serve/worker.h"

extern char** environ;

namespace hdiff::serve {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One worker slot (one shard) of the executing round.
struct Slot {
  WorkerHealth health = WorkerHealth::kIdle;
  pid_t pid = -1;
  int pipe_fd = -1;  ///< heartbeat read end (nonblocking)
  TimePoint spawned_at{};
  TimePoint last_beat{};
  TimePoint respawn_at{};
  int consecutive_deaths = 0;
  bool done = false;       ///< this shard's result is in hand
  bool kill_sent = false;  ///< hang SIGKILL already fired this spawn
};

/// All run() state lives here so the control-plane handler (a lambda over
/// `this`) can report on it; everything runs on one thread, so no locks.
class Runner {
 public:
  Runner(const ServeConfig& config,
         const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet,
         net::TcpListener& listener)
      : config_(config),
        listener_(listener),
        store_(config.campaign.state_dir),
        chain_(net::Chain::from_fleet(fleet)),
        sobs_(obs::ServeObs::from(config.obs)),
        own_fleet_(config.obs.metrics),
        fleet_(config.fleet != nullptr ? config.fleet : &own_fleet_),
        flight_(config.campaign.state_dir, config.obs.clock,
                config.flight_capacity),
        hb_(config.obs.metrics, config.obs.clock,
            config.shards == 0 ? 1 : config.shards),
        serve_loop_(
            listener,
            [this](const net::ControlRequest& rq) { return handle(rq); },
            net::ServeLoopConfig{
                .obs = config.obs,
                .known_targets = {"/healthz", "/readyz", "/status", "/metrics",
                                  "/events",
                                  "/campaigns/" + config.campaign_id +
                                      "/stop"}}) {
    // Resume the persisted lifecycle ring before anything can be recorded,
    // so /events sequence numbers continue across supervisor generations.
    flight_.load();
    // Restart backoff must fit inside one heartbeat interval, or a crashed
    // worker cannot be back before /healthz is allowed to degrade.
    restart_ = config_.restart;
    const int cap = config_.heartbeat_interval_ms / 2;
    if (cap > 0 && restart_.backoff_max_ms > cap) restart_.backoff_max_ms = cap;
    if (restart_.backoff_base_ms > restart_.backoff_max_ms) {
      restart_.backoff_base_ms = restart_.backoff_max_ms > 0
                                     ? restart_.backoff_max_ms
                                     : 1;
    }
    quarantined_.assign(shards(), false);
    slots_.assign(shards(), Slot{});
    chaos_fired_.assign(config_.chaos.size(), false);
  }

  ~Runner() {
    for (Slot& slot : slots_) release_slot(slot);
  }

  ServeReport run();

 private:
  std::size_t shards() const noexcept {
    return config_.shards == 0 ? 1 : config_.shards;
  }

  bool drain_requested() const noexcept {
    if (stop_requested_) return true;
    return config_.drain_flag != nullptr && *config_.drain_flag != 0;
  }

  /// /healthz contract: degraded only while an executing slot has a dead
  /// worker awaiting respawn.  Quarantined shards are handled failures.
  bool degraded() const noexcept {
    if (!executing_) return false;
    for (const Slot& slot : slots_) {
      if (slot.health == WorkerHealth::kDegraded) return true;
    }
    return false;
  }

  void pump(int timeout_ms) { serve_loop_.poll_once(timeout_ms); }

  net::ControlResponse handle(const net::ControlRequest& rq);
  std::string status_json() const;

  bool execute_round_sharded(std::size_t round,
                             const campaign::RoundPlan& plan,
                             std::vector<campaign::ShardResult>* results);
  bool spawn_worker(std::size_t shard, std::size_t round);
  void release_slot(Slot& slot);
  void on_death(std::size_t shard);
  campaign::ShardResult run_inline(std::size_t round,
                                   const campaign::RoundPlan& plan,
                                   std::size_t shard);
  void accumulate_stats(const campaign::ShardResult& result);
  void absorb_obs(const campaign::ShardResult& result);
  void update_health_gauge();

  const ServeConfig& config_;
  net::TcpListener& listener_;
  campaign::StateStore store_;
  net::Chain chain_;
  core::ObservationMemo memo_;
  net::VerdictCache verdicts_;
  obs::ServeObs sobs_;
  FleetMetrics own_fleet_;  ///< used when the caller supplies none
  FleetMetrics* fleet_;
  FlightRecorder flight_;
  HeartbeatTracker hb_;
  net::ServeLoop serve_loop_;
  net::RetryPolicy restart_;

  ServeReport report_;
  std::vector<Slot> slots_;
  std::vector<bool> quarantined_;  ///< persists across rounds
  std::vector<bool> chaos_fired_;  ///< one-shot latch per chaos action
  bool ready_ = false;
  bool executing_ = false;
  bool stop_requested_ = false;
  std::size_t round_ = 0;

  // Cumulative executor degradation counters across all merged shard
  // results and inline executions (satellite: surfaced on /status).
  std::size_t cum_faulted_ = 0;
  std::size_t cum_retry_ = 0;
  std::size_t cum_recovered_ = 0;
  std::size_t cum_quarantined_cases_ = 0;

  // Cumulative round-integration tallies for /status (hdiff tail computes
  // novelty/divergence rates from these between polls).
  std::size_t cum_cases_ = 0;
  std::size_t cum_novel_ = 0;
  std::size_t cum_duplicate_ = 0;
  bool drain_recorded_ = false;  ///< flight "drain" event fired once
};

void Runner::release_slot(Slot& slot) {
  if (slot.pipe_fd >= 0) {
    ::close(slot.pipe_fd);
    slot.pipe_fd = -1;
  }
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);
    ::waitpid(slot.pid, nullptr, 0);
    slot.pid = -1;
  }
}

net::ControlResponse Runner::handle(const net::ControlRequest& rq) {
  net::ControlResponse response;
  if (rq.target == "/healthz") {
    if (degraded()) {
      response.status = 503;
      response.body = "degraded: worker down, respawn pending\n";
    } else {
      response.body = "ok\n";
    }
    return response;
  }
  if (rq.target == "/readyz") {
    if (!ready_) {
      response.status = 503;
      response.body = "starting\n";
    } else if (drain_requested()) {
      response.status = 503;
      response.body = "draining\n";
    } else {
      response.body = "ok\n";
    }
    return response;
  }
  if (rq.target == "/status") {
    response.content_type = "application/json";
    response.body = status_json();
    return response;
  }
  if (rq.target == "/metrics") {
    response.content_type = "text/plain; version=0.0.4";
    // Fleet render = supervisor totals (absorbed worker snapshots included)
    // plus per-origin labeled series; empty when metrics are off.
    response.body = fleet_->render();
    return response;
  }
  if (rq.target == "/events" || rq.target.rfind("/events?", 0) == 0) {
    std::uint64_t since = 0;
    const std::size_t q = rq.target.find("since=");
    if (q != std::string::npos) {
      since = std::strtoull(rq.target.c_str() + q + 6, nullptr, 10);
    }
    response.content_type = "application/json";
    response.body = flight_.events_json(since);
    return response;
  }
  const std::string stop_target = "/campaigns/" + config_.campaign_id + "/stop";
  if (rq.target == stop_target) {
    if (rq.method != "POST") {
      response.status = 405;
      response.body = "stop wants POST\n";
      return response;
    }
    if (!stop_requested_) {
      flight_.record("stop", round_, FlightEvent::kNone, "control-plane");
    }
    stop_requested_ = true;
    response.status = 202;
    response.body = "draining: finishing the current round\n";
    return response;
  }
  response.status = 404;
  response.body = "unknown control target\n";
  return response;
}

std::string Runner::status_json() const {
  std::string out = "{";
  out += "\"campaign\":\"" + json_escape(config_.campaign_id) + "\",";
  out += std::string("\"state\":\"") +
         (drain_requested() ? "draining" : "running") + "\",";
  out += "\"degraded\":" + std::string(degraded() ? "true" : "false") + ",";
  out += "\"round\":" + std::to_string(round_) + ",";
  out += "\"rounds_completed\":" + std::to_string(store_.rounds_completed) +
         ",";
  out += "\"target_rounds\":" + std::to_string(config_.campaign.rounds + 1) +
         ",";
  out += "\"shards\":" + std::to_string(shards()) + ",";
  out += "\"findings\":" + std::to_string(store_.findings.size()) + ",";
  out += "\"corpus_entries\":" + std::to_string(store_.entries.size()) + ",";
  out += "\"retry_depth\":" + std::to_string(store_.retry_queue.size()) + ",";
  out += "\"workers\":[";
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    const Slot& slot = slots_[k];
    if (k != 0) out += ",";
    out += "{\"shard\":" + std::to_string(k) + ",";
    out += "\"health\":\"" + std::string(to_string(slot.health)) + "\",";
    out += "\"pid\":" + std::to_string(slot.pid > 0 ? slot.pid : -1) + ",";
    out += "\"consecutive_deaths\":" +
           std::to_string(slot.consecutive_deaths) + ",";
    out += "\"last_heartbeat_ms\":" + std::to_string(hb_.age_ms(k)) + ",";
    out += "\"done\":" + std::string(slot.done ? "true" : "false") + "}";
  }
  out += "],";
  out += "\"novelty\":{";
  out += "\"cases\":" + std::to_string(cum_cases_) + ",";
  out += "\"novel\":" + std::to_string(cum_novel_) + ",";
  out += "\"duplicate\":" + std::to_string(cum_duplicate_) + "},";
  out += "\"executor\":{";
  out += "\"faulted_attempts\":" + std::to_string(cum_faulted_) + ",";
  out += "\"retry_attempts\":" + std::to_string(cum_retry_) + ",";
  out += "\"recovered_cases\":" + std::to_string(cum_recovered_) + ",";
  out += "\"quarantined_cases\":" + std::to_string(cum_quarantined_cases_) +
         "},";
  out += "\"supervisor\":{";
  out += "\"worker_spawns\":" + std::to_string(report_.worker_spawns) + ",";
  out += "\"worker_deaths\":" + std::to_string(report_.worker_deaths) + ",";
  out += "\"worker_hangs\":" + std::to_string(report_.worker_hangs) + ",";
  out += "\"worker_restarts\":" + std::to_string(report_.worker_restarts) +
         ",";
  out += "\"quarantined_shards\":" +
         std::to_string(report_.quarantined_shards) + ",";
  out += "\"reused_shard_results\":" +
         std::to_string(report_.reused_shard_results) + "}";
  out += "}";
  return out;
}

bool Runner::spawn_worker(std::size_t shard, std::size_t round) {
  Slot& slot = slots_[shard];
  int fds[2];
  if (::pipe(fds) != 0) return false;
  // Read end: supervisor-side, nonblocking, never inherited.  Write end:
  // CLOEXEC so the worker sees it only as the dup2'd fd 3.
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);

  std::vector<std::string> args;
  args.push_back(config_.worker_binary);
  args.push_back("serve-worker");
  args.push_back("--state-dir");
  args.push_back(config_.campaign.state_dir);
  args.push_back("--shard");
  args.push_back(std::to_string(shard));
  args.push_back("--shards");
  args.push_back(std::to_string(shards()));
  args.push_back("--round");
  args.push_back(std::to_string(round));
  args.push_back("--heartbeat-ms");
  args.push_back(std::to_string(config_.heartbeat_interval_ms));
  args.push_back("--heartbeat-fd");
  args.push_back("3");
  // Observability export mirrors the supervisor's own configuration (these
  // flags never enter the campaign config signature — obs only reads).
  if (fleet_->enabled()) args.push_back("--export-metrics");
  if (config_.obs.trace != nullptr) args.push_back("--export-trace");
  for (const std::string& a : config_.worker_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, fds[1], 3);

  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, config_.worker_binary.c_str(), &actions,
                               nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(fds[1]);
  if (rc != 0) {
    ::close(fds[0]);
    return false;
  }

  slot.pid = pid;
  slot.pipe_fd = fds[0];
  slot.health = WorkerHealth::kSpawned;
  slot.spawned_at = slot.last_beat = Clock::now();
  slot.kill_sent = false;
  ++report_.worker_spawns;
  if (sobs_.spawns) sobs_.spawns->add();
  hb_.beat(shard);  // age measures from spawn until the first real beat
  flight_.record("spawn", round, shard, "pid " + std::to_string(pid));
  return true;
}

void Runner::on_death(std::size_t shard) {
  Slot& slot = slots_[shard];
  release_slot(slot);
  hb_.clear(shard);
  ++slot.consecutive_deaths;
  ++report_.worker_deaths;
  if (sobs_.deaths) sobs_.deaths->add();
  flight_.record(
      "worker_death", round_, shard,
      "consecutive " + std::to_string(slot.consecutive_deaths));
  if (slot.consecutive_deaths >= config_.quarantine_after) {
    // Workers keep dying on this shard (a poisoned case crashing the child,
    // a broken worker binary, resource exhaustion).  Stop burning respawns:
    // the supervisor runs the shard inline, so the round still completes.
    slot.health = WorkerHealth::kQuarantined;
    quarantined_[shard] = true;
    ++report_.quarantined_shards;
    flight_.record("quarantine", round_, shard,
                   "after " + std::to_string(slot.consecutive_deaths) +
                       " consecutive deaths; running inline");
    if (sobs_.quarantines) sobs_.quarantines->add();
    if (sobs_.shards_quarantined) {
      std::int64_t n = 0;
      for (bool q : quarantined_) n += q ? 1 : 0;
      sobs_.shards_quarantined->set(n);
    }
    return;
  }
  slot.health = WorkerHealth::kDegraded;
  const std::string key = "shard:" + std::to_string(shard);
  slot.respawn_at =
      Clock::now() + std::chrono::milliseconds(restart_.backoff_ms(
                         slot.consecutive_deaths - 1, key));
}

campaign::ShardResult Runner::run_inline(std::size_t round,
                                         const campaign::RoundPlan& plan,
                                         std::size_t shard) {
  const std::vector<std::size_t> mine =
      campaign::shard_indices(plan.cases, shard, shards());
  // Inline execution mirrors a worker process exactly: fresh memo/verdict
  // caches scoped to this (round, shard) and scratch obs instruments that
  // travel back inside the shard result.  That single shape keeps
  // /metrics totals identical between sharded and --in-process runs (a
  // shared cross-round memo would skip observations a worker would make)
  // and gives every absorbed snapshot exactly-once semantics.
  obs::Registry scratch_registry;
  obs::TraceSink scratch_sink(config_.campaign.obs.clock);
  campaign::CampaignConfig cfg = config_.campaign;
  cfg.obs.metrics = fleet_->enabled() ? &scratch_registry : nullptr;
  cfg.obs.trace = config_.obs.trace != nullptr ? &scratch_sink : nullptr;
  core::ObservationMemo memo;
  net::VerdictCache verdicts;
  campaign::ExecutedRound executed;
  {
    obs::Span span(cfg.obs.trace, "worker:execute_round", "serve");
    span.arg("shard", std::to_string(shard) + "/" + std::to_string(shards()) +
                          " round " + std::to_string(round) + " (inline)");
    executed = campaign::execute_round(cfg, chain_, plan.cases, &memo,
                                       &verdicts, &mine);
  }
  campaign::ShardResult result;
  result.round = round;
  result.shard = shard;
  result.shards = shards();
  result.config_sig = store_.config_sig;
  result.faulted_attempts = executed.stats.faulted_attempts;
  result.retry_attempts = executed.stats.retry_attempts;
  result.recovered_cases = executed.stats.recovered_cases;
  result.quarantined_cases = executed.stats.quarantined_cases;
  for (std::size_t index : mine) {
    result.outcomes.emplace(index, executed.outcomes[index]);
  }
  if (fleet_->enabled()) result.metrics = scratch_registry.snapshot();
  if (cfg.obs.trace != nullptr) {
    result.trace_pid = static_cast<std::uint32_t>(::getpid());
    result.trace = scratch_sink.export_events();
  }
  // Published durably like a worker's, so a supervisor crash right after an
  // inline run still resumes without re-observing this shard.
  campaign::write_shard_result(config_.campaign.state_dir, result);
  return result;
}

void Runner::accumulate_stats(const campaign::ShardResult& result) {
  cum_faulted_ += result.faulted_attempts;
  cum_retry_ += result.retry_attempts;
  cum_recovered_ += result.recovered_cases;
  cum_quarantined_cases_ += result.quarantined_cases;
}

void Runner::absorb_obs(const campaign::ShardResult& result) {
  // The single cross-process merge point: only adopted (durable, header-
  // validated) results get here, so worker observability is absorbed
  // exactly once per unit of completed work — partial counts from killed
  // workers never existed on disk.
  if (fleet_->enabled()) fleet_->absorb(result.shard, result.metrics);
  if (config_.obs.trace != nullptr && !result.trace.empty()) {
    const std::uint32_t pid = result.trace_pid != 0
                                  ? result.trace_pid
                                  : 900000u + static_cast<std::uint32_t>(
                                                  result.shard);
    config_.obs.trace->import_process(
        pid, "worker shard " + std::to_string(result.shard), result.trace);
  }
}

void Runner::update_health_gauge() {
  if (!sobs_.workers_healthy) return;
  std::int64_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.health == WorkerHealth::kHealthy ? 1 : 0;
  }
  sobs_.workers_healthy->set(n);
}

bool Runner::execute_round_sharded(
    std::size_t round, const campaign::RoundPlan& plan,
    std::vector<campaign::ShardResult>* results) {
  const std::size_t n = shards();
  std::vector<std::optional<campaign::ShardResult>> done(n);
  slots_.assign(n, Slot{});
  for (std::size_t k = 0; k < n; ++k) {
    if (quarantined_[k]) slots_[k].health = WorkerHealth::kQuarantined;
  }
  executing_ = true;

  for (std::size_t k = 0; k < n; ++k) {
    // Crash-resume: adopt a valid leftover result from a previous
    // supervisor generation of this very round (header-validated).
    campaign::ShardResult leftover;
    if (campaign::load_shard_result(config_.campaign.state_dir, round, k, n,
                                    store_.config_sig, &leftover)) {
      accumulate_stats(leftover);
      absorb_obs(leftover);
      flight_.record("reuse_result", round, k,
                     "leftover shard result adopted");
      done[k] = std::move(leftover);
      slots_[k].done = true;
      ++report_.reused_shard_results;
      continue;
    }
    // A shard that owns no cases this round needs no worker at all.
    if (campaign::shard_indices(plan.cases, k, n).empty()) {
      campaign::ShardResult empty;
      empty.round = round;
      empty.shard = k;
      empty.shards = n;
      empty.config_sig = store_.config_sig;
      done[k] = std::move(empty);
      slots_[k].done = true;
    }
  }

  // No worker binary = in-process mode: every shard runs inline.  Also the
  // fallback once a shard is quarantined.
  const bool inline_only = config_.worker_binary.empty();

  const auto heartbeat =
      std::chrono::milliseconds(config_.heartbeat_interval_ms);
  int poll_ms = config_.heartbeat_interval_ms / 4;
  if (poll_ms < 1) poll_ms = 1;
  if (poll_ms > 10) poll_ms = 10;

  while (true) {
    bool all_done = true;
    for (std::size_t k = 0; k < n; ++k) all_done = all_done && slots_[k].done;
    if (all_done) break;

    TimePoint now = Clock::now();

    for (std::size_t k = 0; k < n; ++k) {
      Slot& slot = slots_[k];
      if (slot.done) continue;

      // Quarantined (or worker-less) shards run inline right here; the
      // control plane stalls for the duration, which is the accepted cost
      // of an already-degraded configuration.
      if (inline_only || slot.health == WorkerHealth::kQuarantined) {
        campaign::ShardResult result = run_inline(round, plan, k);
        accumulate_stats(result);
        absorb_obs(result);
        done[k] = std::move(result);
        slot.done = true;
        continue;
      }

      if (slot.health == WorkerHealth::kIdle) {
        if (!spawn_worker(k, round)) on_death(k);
        continue;
      }
      if (slot.health == WorkerHealth::kDegraded && now >= slot.respawn_at) {
        if (spawn_worker(k, round)) {
          ++report_.worker_restarts;
          if (sobs_.restarts) sobs_.restarts->add();
          flight_.record("restart", round, k,
                         "attempt " + std::to_string(slot.consecutive_deaths));
        } else {
          on_death(k);
        }
        continue;
      }
    }

    // Chaos injection (tests): signal a freshly spawned worker.  Each
    // action fires at most once ever (not once per spawn — a respawned
    // worker must be allowed to finish, or a kill action would starve its
    // shard forever).  The clock is re-read here so a zero-delay action
    // fires in the same iteration as the spawn, while the child is still
    // exec()ing — that makes the kill deterministic even for shards whose
    // work would finish within one supervision poll.
    now = Clock::now();
    for (std::size_t a = 0; a < config_.chaos.size(); ++a) {
      const ChaosAction& action = config_.chaos[a];
      if (chaos_fired_[a] || action.round != round || action.shard >= n) {
        continue;
      }
      Slot& slot = slots_[action.shard];
      if (slot.pid <= 0 || slot.done) continue;
      if (now - slot.spawned_at <
          std::chrono::milliseconds(action.delay_ms)) {
        continue;
      }
      chaos_fired_[a] = true;
      ::kill(slot.pid,
             action.kind == ChaosAction::Kind::kKill ? SIGKILL : SIGSTOP);
    }

    pump(poll_ms);
    now = Clock::now();

    // Heartbeats: any byte is liveness; 'D' additionally means the result
    // is on disk (the reap below confirms it).
    for (std::size_t k = 0; k < n; ++k) {
      Slot& slot = slots_[k];
      if (slot.pipe_fd < 0) continue;
      char buf[256];
      while (true) {
        const ssize_t got = ::read(slot.pipe_fd, buf, sizeof buf);
        if (got > 0) {
          slot.last_beat = now;
          hb_.beat(k);
          if (slot.health == WorkerHealth::kSpawned) {
            slot.health = WorkerHealth::kHealthy;
          }
          if (sobs_.heartbeats) {
            sobs_.heartbeats->add(static_cast<std::uint64_t>(got));
          }
          continue;
        }
        break;  // EAGAIN (no data), EOF, or error: reap below decides
      }
    }

    // Reap exits.
    for (std::size_t k = 0; k < n; ++k) {
      Slot& slot = slots_[k];
      if (slot.pid <= 0) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped != slot.pid) continue;
      slot.pid = -1;  // reaped; release_slot must not wait again
      if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerOk) {
        campaign::ShardResult result;
        if (campaign::load_shard_result(config_.campaign.state_dir, round, k,
                                        n, store_.config_sig, &result)) {
          accumulate_stats(result);
          absorb_obs(result);
          done[k] = std::move(result);
          slot.done = true;
          slot.consecutive_deaths = 0;
          slot.health = WorkerHealth::kIdle;
          hb_.clear(k);
          release_slot(slot);
          continue;
        }
        // Exit 0 without a loadable result is a protocol violation —
        // treated exactly like a crash.
      }
      on_death(k);
    }

    // Hang detection: a live worker silent for two intervals (SIGSTOPped,
    // deadlocked, or wedged in a syscall) is killed; the reap above turns
    // that into the ordinary death path next pass.
    for (std::size_t k = 0; k < n; ++k) {
      Slot& slot = slots_[k];
      if (slot.pid <= 0 || slot.kill_sent) continue;
      if (slot.health != WorkerHealth::kSpawned &&
          slot.health != WorkerHealth::kHealthy) {
        continue;
      }
      if (now - slot.last_beat > 2 * heartbeat) {
        slot.kill_sent = true;
        ++report_.worker_hangs;
        if (sobs_.hangs) sobs_.hangs->add();
        flight_.record("hang_kill", round, k, "silent 2x heartbeat");
        ::kill(slot.pid, SIGKILL);
      }
    }

    update_health_gauge();
    hb_.publish();
  }

  executing_ = false;
  update_health_gauge();
  results->clear();
  results->reserve(n);
  for (std::size_t k = 0; k < n; ++k) results->push_back(std::move(*done[k]));
  return true;
}

ServeReport Runner::run() {
  const std::string sig = campaign::campaign_config_sig(config_.campaign);
  if (!store_.acquire_lock()) {
    report_.error = store_.error();
    return report_;
  }
  if (store_.exists()) {
    if (!store_.load()) {
      report_.error = store_.error();
      return report_;
    }
    if (store_.config_sig != sig) {
      report_.error = "config signature mismatch: state dir " +
                      config_.campaign.state_dir +
                      " was created by a campaign with different "
                      "seeds/bootstrap/budget (" +
                      store_.config_sig + " vs " + sig + ")";
      return report_;
    }
    report_.resumed = true;
  } else if (!store_.init(sig)) {
    report_.error = store_.error();
    return report_;
  }
  if (store_.rounds_completed == 0) {
    campaign::register_seed_entries(store_, config_.campaign);
    campaign::register_stream_seed_entries(store_, config_.campaign);
  }
  // Workers re-plan from the committed checkpoint, so adopting the coverage
  // plan here is all it takes for every shard to see identical ids.
  campaign::adopt_coverage(store_, config_.campaign);
  ready_ = true;
  flight_.record(report_.resumed ? "resume" : "start", store_.rounds_completed,
                 FlightEvent::kNone,
                 std::to_string(shards()) + " shards, target " +
                     std::to_string(config_.campaign.rounds + 1) + " rounds");

  const std::size_t total_rounds = config_.campaign.rounds + 1;
  while (store_.rounds_completed < total_rounds) {
    if (drain_requested()) {
      report_.drained = true;
      if (!drain_recorded_) {
        drain_recorded_ = true;
        flight_.record("drain", store_.rounds_completed);
      }
      break;
    }
    const std::size_t round = store_.rounds_completed;
    round_ = round;
    if (sobs_.round) sobs_.round->set(static_cast<std::int64_t>(round));

    obs::Span round_span(config_.obs.trace, "serve:round", "serve");
    if (config_.obs.trace) round_span.arg("round", std::to_string(round));

    campaign::RoundPlan plan =
        campaign::plan_round(store_, config_.campaign, round);
    std::vector<campaign::ShardResult> results;
    if (!execute_round_sharded(round, plan, &results)) return report_;

    std::vector<campaign::CaseOutcome> outcomes;
    std::size_t missing = 0;
    if (!campaign::merge_shard_outcomes(results, plan.cases.size(), &outcomes,
                                        &missing)) {
      report_.error = "shard merge hole: planned case " +
                      std::to_string(missing) +
                      " of round " + std::to_string(round) +
                      " was executed by no shard";
      return report_;
    }

    campaign::RoundReport rr = campaign::integrate_round(
        store_, config_.campaign, round, plan.cases, outcomes, chain_, &memo_,
        &verdicts_);
    rr.replayed = plan.replayed;
    campaign::emit_round_metrics(config_.campaign.obs, rr, store_);
    if (sobs_.rounds) sobs_.rounds->add();
    cum_cases_ += rr.cases;
    cum_novel_ += rr.novel;
    cum_duplicate_ += rr.duplicate;

    if (!store_.commit_round(round)) {
      report_.error = store_.error();
      return report_;
    }
    ++report_.rounds_run;
    flight_.record("round_commit", round, FlightEvent::kNone,
                   "cases=" + std::to_string(rr.cases) +
                       " novel=" + std::to_string(rr.novel) +
                       " findings=" + std::to_string(store_.findings.size()) +
                       " corpus=" + std::to_string(store_.entries.size()));

    // The committed checkpoint supersedes this round's shard results; a
    // leftover would be rejected next round anyway (header round), removing
    // them just keeps the state dir from accreting.
    std::error_code ec;
    for (std::size_t k = 0; k < shards(); ++k) {
      std::filesystem::remove(
          campaign::shard_result_path(config_.campaign.state_dir, round, k),
          ec);
    }

    pump(0);  // keep the control plane fresh between rounds
  }

  if (drain_requested()) {
    report_.drained = true;
    if (!drain_recorded_) {
      drain_recorded_ = true;
      flight_.record("drain", store_.rounds_completed);
    }
  }
  report_.total_findings = store_.findings.size();
  report_.corpus_entries = store_.entries.size();

  // Flush the control plane before exiting: the stop/status response that
  // *triggered* a drain may still be queued on its connection, and tearing
  // the loop down now would reset the client that asked us to stop.
  // Bounded — a stalled client cannot hold the exit hostage.
  const TimePoint flush_deadline =
      Clock::now() + std::chrono::milliseconds(250);
  while (serve_loop_.open_connections() > 0 &&
         Clock::now() < flush_deadline) {
    pump(5);
  }
  return report_;
}

}  // namespace

std::string_view to_string(WorkerHealth health) noexcept {
  switch (health) {
    case WorkerHealth::kIdle: return "idle";
    case WorkerHealth::kSpawned: return "spawned";
    case WorkerHealth::kHealthy: return "healthy";
    case WorkerHealth::kDegraded: return "degraded";
    case WorkerHealth::kQuarantined: return "quarantined";
  }
  return "idle";
}

Supervisor::Supervisor(
    ServeConfig config,
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet)
    : config_(std::move(config)),
      fleet_(fleet),
      listener_(config_.port, config_.bind_retry) {}

ServeReport Supervisor::run() {
  Runner runner(config_, fleet_, listener_);
  return runner.run();
}

}  // namespace hdiff::serve
