// Cross-process introspection for the serve daemon: the fleet-wide merged
// metrics view and per-worker heartbeat-age tracking.
//
// FleetMetrics is where worker registry snapshots (shipped inside durable
// shard results) land on the supervisor side.  Each snapshot is absorbed
// three times — into the caller's total registry (which also holds the
// supervisor's own instruments, so unlabeled series are true fleet
// totals), into a workers-only aggregate rendered as
// `process="worker",shard="all"`, and into a per-shard registry rendered
// as `process="worker",shard="N"` — giving /metrics the origin-labeled
// breakdown without touching any hot path.  Because snapshots only travel
// inside adopted (durable, validated) shard results, each unit of work is
// absorbed exactly once: a killed worker's partial counts die with it and
// the re-executed shard's replace them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace hdiff::serve {

class FleetMetrics {
 public:
  /// `total` is the registry unlabeled series render from (typically the
  /// supervisor's own, shared with ServeObs); null disables everything.
  explicit FleetMetrics(obs::Registry* total = nullptr) : total_(total) {}

  bool enabled() const noexcept { return total_ != nullptr; }
  obs::Registry* total() const noexcept { return total_; }

  /// Merge one worker snapshot (from shard `shard`'s adopted result).
  /// Returns the number of histogram rows dropped for bounds mismatch
  /// (0 in a healthy fleet).
  std::size_t absorb(std::size_t shard, const obs::Registry::Snapshot& snap);

  /// Merged multi-origin Prometheus exposition: unlabeled totals plus
  /// `process="worker"` series per shard and aggregated (`shard="all"`).
  std::string render() const;

 private:
  obs::Registry* total_;
  obs::Registry workers_;  ///< aggregate across all shards
  std::map<std::size_t, std::unique_ptr<obs::Registry>> per_shard_;
};

/// Tracks milliseconds-since-last-heartbeat per worker slot on an
/// injectable clock, publishing `hdiff_serve_heartbeat_age_ms{shard="N"}`
/// gauges.  Age is measured from the most recent beat (spawn counts as a
/// beat); a cleared slot (worker reaped or not running) reports -1 and its
/// gauge parks at -1.
class HeartbeatTracker {
 public:
  HeartbeatTracker(obs::Registry* registry, const obs::Clock* clock,
                   std::size_t shards);

  void beat(std::size_t shard);
  void clear(std::size_t shard);

  /// Milliseconds since `shard`'s last beat; -1 when it has none pending.
  std::int64_t age_ms(std::size_t shard) const;

  /// Refresh the per-shard gauges (no-op without a registry).
  void publish();

 private:
  const obs::Clock* clock_;
  std::vector<std::int64_t> last_us_;  ///< -1 = no live worker
  std::vector<obs::Gauge*> gauges_;    ///< empty without a registry
};

}  // namespace hdiff::serve
