// Flight recorder: a bounded ring of structured supervisor lifecycle
// events (spawn, death, hang-kill, restart, quarantine, round commit,
// drain) that survives supervisor restarts.
//
// Every event is appended to `<state-dir>/flight.events` as one line before
// it enters the in-memory ring, so the sequence numbering is continuous
// across daemon generations: a supervisor that crashed mid-round resumes
// numbering where its predecessor stopped, and `GET /events?since=<seq>`
// clients never see a seq go backwards.  The file is plain append (no
// tmp+rename per event — an event is worthless if it costs a rename); a
// torn final line from a crash is simply skipped on load, which at most
// loses the one event that was being written when the process died.  Load
// compacts the file back to ring capacity when restarts have let it grow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

namespace hdiff::serve {

struct FlightEvent {
  /// Strictly increasing across supervisor generations (persisted).
  std::uint64_t seq = 0;
  /// Milliseconds on the recorder's clock (monotonic by default; an
  /// injectable test clock makes event times deterministic).
  std::uint64_t ts_ms = 0;
  std::string kind;
  /// Round / shard the event concerns; kNone when not applicable.
  std::size_t round = kNone;
  std::size_t shard = kNone;
  std::string detail;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

class FlightRecorder {
 public:
  /// `clock` is injectable for tests; null = steady clock.  Nothing is read
  /// or written until `load()` / the first `record()`.
  explicit FlightRecorder(std::string state_dir,
                          const obs::Clock* clock = nullptr,
                          std::size_t capacity = 1024);

  /// Replay the persisted file into the ring (keeping the newest
  /// `capacity` events) and resume sequence numbering after the highest
  /// seq seen.  Missing file = empty recorder; a torn tail line is
  /// skipped.  Compacts the file when it holds far more than `capacity`
  /// lines.  Call once, before the first record().
  void load();

  /// Append one event: persisted first, then ring-buffered.
  void record(std::string_view kind, std::size_t round = FlightEvent::kNone,
              std::size_t shard = FlightEvent::kNone,
              std::string_view detail = {});

  /// Events with seq > `since`, oldest first (ring contents only).
  std::vector<FlightEvent> events_since(std::uint64_t since) const;

  /// `{"next_seq":N,"events":[...]}` for GET /events?since=<seq>.  A
  /// client polls with the returned next_seq to receive only deltas.
  std::string events_json(std::uint64_t since) const;

  /// Seq the next recorded event will get.
  std::uint64_t next_seq() const noexcept { return next_seq_; }

  std::size_t size() const noexcept { return ring_.size(); }

  static std::string path(const std::string& state_dir);

 private:
  void append_line(const FlightEvent& event);

  std::string state_dir_;
  const obs::Clock* clock_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
  std::deque<FlightEvent> ring_;
  std::ofstream out_;
};

/// One line of the persisted format: `ev=<seq> <ts_ms> <kind-enc> <round|->
/// <shard|-> <detail-enc>`.  Exposed for tests.
std::string render_flight_event(const FlightEvent& event);
bool parse_flight_event(std::string_view line, FlightEvent* out);

}  // namespace hdiff::serve
