#include "serve/introspect.h"

namespace hdiff::serve {

std::size_t FleetMetrics::absorb(std::size_t shard,
                                 const obs::Registry::Snapshot& snap) {
  if (!enabled()) return 0;
  std::size_t dropped = total_->absorb(snap);
  dropped += workers_.absorb(snap);
  auto it = per_shard_.find(shard);
  if (it == per_shard_.end()) {
    it = per_shard_.emplace(shard, std::make_unique<obs::Registry>()).first;
  }
  dropped += it->second->absorb(snap);
  return dropped;
}

std::string FleetMetrics::render() const {
  if (!enabled()) return "";
  std::vector<obs::RegistryView> views;
  views.push_back({total_, ""});
  views.push_back({&workers_, "process=\"worker\",shard=\"all\""});
  for (const auto& [shard, registry] : per_shard_) {
    views.push_back({registry.get(), "process=\"worker\",shard=\"" +
                                         std::to_string(shard) + "\""});
  }
  return obs::render_prometheus(views);
}

HeartbeatTracker::HeartbeatTracker(obs::Registry* registry,
                                   const obs::Clock* clock,
                                   std::size_t shards)
    : clock_(clock ? clock : &obs::steady_clock_instance()),
      last_us_(shards, -1) {
  if (registry == nullptr) return;
  gauges_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    obs::Gauge& g = registry->gauge(obs::labeled_name(
        "hdiff_serve_heartbeat_age_ms",
        obs::prom_label("shard", std::to_string(k))));
    g.set(-1);
    gauges_.push_back(&g);
  }
}

void HeartbeatTracker::beat(std::size_t shard) {
  if (shard >= last_us_.size()) return;
  last_us_[shard] = static_cast<std::int64_t>(clock_->now_us());
}

void HeartbeatTracker::clear(std::size_t shard) {
  if (shard >= last_us_.size()) return;
  last_us_[shard] = -1;
}

std::int64_t HeartbeatTracker::age_ms(std::size_t shard) const {
  if (shard >= last_us_.size() || last_us_[shard] < 0) return -1;
  const std::int64_t now = static_cast<std::int64_t>(clock_->now_us());
  const std::int64_t age_us = now - last_us_[shard];
  return age_us < 0 ? 0 : age_us / 1000;
}

void HeartbeatTracker::publish() {
  for (std::size_t k = 0; k < gauges_.size(); ++k) {
    gauges_[k]->set(age_ms(k));
  }
}

}  // namespace hdiff::serve
