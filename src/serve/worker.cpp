#include "serve/worker.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "campaign/shard.h"
#include "campaign/store.h"
#include "net/chain.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hdiff::serve {

namespace {

/// Writes one byte every `interval_ms/2` to the inherited pipe until
/// stopped.  EPIPE (supervisor died) silently stops beating — the worker
/// finishes its shard anyway; the result file is still useful to the next
/// supervisor generation.
class Heartbeat {
 public:
  Heartbeat(int fd, int interval_ms) : fd_(fd) {
    if (fd_ < 0) return;
    const auto period =
        std::chrono::milliseconds(interval_ms > 1 ? interval_ms / 2 : 1);
    thread_ = std::thread([this, period] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        if (!beat('h')) return;
        cv_.wait_for(lock, period, [this] { return stop_; });
      }
    });
  }

  ~Heartbeat() {
    if (fd_ < 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Final liveness byte once the result is durably published.
  void done() { beat('D'); }

 private:
  bool beat(char c) {
    if (fd_ < 0) return false;
    while (true) {
      const ssize_t n = ::write(fd_, &c, 1);
      if (n == 1) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE / supervisor gone
    }
  }

  int fd_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

int run_worker(
    const WorkerOptions& options,
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet) {
  Heartbeat heartbeat(options.heartbeat_fd, options.heartbeat_interval_ms);

  campaign::StateStore store(options.config.state_dir);
  if (!store.exists() || !store.load_readonly()) return kWorkerStateError;
  // The plan is only shared when worker and supervisor hold the same
  // committed checkpoint AND built it from the same config.  A mismatch is
  // a stale ask (supervisor committed while this worker was queued, or the
  // daemon was restarted with different flags): report it as such so the
  // supervisor re-plans instead of retrying a doomed worker.
  if (store.config_sig != campaign::campaign_config_sig(options.config) ||
      store.rounds_completed != options.round) {
    return kWorkerStale;
  }

  campaign::RoundPlan plan =
      campaign::plan_round(store, options.config, options.round);
  const std::vector<std::size_t> mine =
      campaign::shard_indices(plan.cases, options.shard, options.shards);

  // Worker-local observability: instruments live in this process and cross
  // back to the supervisor only inside the durable shard result, so the
  // counts the fleet registry absorbs are exactly the counts that produced
  // the published outcomes.
  obs::Registry registry;
  obs::TraceSink sink;
  campaign::CampaignConfig config = options.config;
  if (options.export_metrics) config.obs.metrics = &registry;
  if (options.export_trace) config.obs.trace = &sink;

  net::Chain chain = net::Chain::from_fleet(fleet);
  core::ObservationMemo memo;
  net::VerdictCache verdicts;
  campaign::ExecutedRound executed;
  {
    obs::Span span(config.obs.trace, "worker:execute_round", "serve");
    span.arg("shard", std::to_string(options.shard) + "/" +
                          std::to_string(options.shards) + " round " +
                          std::to_string(options.round));
    executed = campaign::execute_round(config, chain, plan.cases, &memo,
                                       &verdicts, &mine);
  }

  campaign::ShardResult result;
  result.round = options.round;
  result.shard = options.shard;
  result.shards = options.shards;
  result.config_sig = store.config_sig;
  result.faulted_attempts = executed.stats.faulted_attempts;
  result.retry_attempts = executed.stats.retry_attempts;
  result.recovered_cases = executed.stats.recovered_cases;
  result.quarantined_cases = executed.stats.quarantined_cases;
  for (std::size_t index : mine) {
    result.outcomes.emplace(index, executed.outcomes[index]);
  }
  // Snapshot after the executor has joined its workers (execute_round
  // returns post-join), satisfying the registry/sink quiescence contract.
  if (options.export_metrics) result.metrics = registry.snapshot();
  if (options.export_trace) {
    result.trace_pid = static_cast<std::uint32_t>(::getpid());
    result.trace = sink.export_events();
  }
  if (!campaign::write_shard_result(options.config.state_dir, result)) {
    return kWorkerStateError;
  }
  heartbeat.done();
  return kWorkerOk;
}

}  // namespace hdiff::serve
