// The worker half of `hdiff serve`: one process, one shard, one round.
//
// A worker is deliberately stateless between invocations — it loads the
// supervisor's committed checkpoint read-only (no lock, no heal), recomputes
// the round plan (planning is a pure function of checkpoint + config, so
// every worker and the supervisor agree on the case list without any
// coordination), executes only the case indices its shard owns, and
// publishes the outcomes as a durable shard result file (shard.h).  Being
// killable at any instant is the design center: a SIGKILL loses at most the
// not-yet-published work of this shard's current round, which the
// supervisor simply re-runs.
//
// Liveness is reported over an inherited pipe: a detached-duty heartbeat
// thread writes one 'h' byte every interval/2 for as long as the process
// makes progress, and the main thread writes 'D' once the result file is
// durably published.  A supervisor that stops seeing bytes knows the worker
// is hung (not merely slow — the thread beats independently of case
// execution) and may SIGKILL it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "campaign/engine.h"
#include "impls/model.h"

namespace hdiff::serve {

/// Worker process exit codes, part of the supervisor/worker contract.
/// Anything else (signals included) is a death the supervisor retries.
enum WorkerExit : int {
  kWorkerOk = 0,         ///< result file durably published
  kWorkerStale = 2,      ///< checkpoint round/config does not match the ask
  kWorkerStateError = 3,  ///< cannot load checkpoint or publish the result
};

struct WorkerOptions {
  /// Full campaign config; must reproduce the supervisor's exactly
  /// (validated against the checkpoint's config signature).
  campaign::CampaignConfig config;
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::size_t round = 0;
  /// Inherited heartbeat pipe write end; -1 disables heartbeating.
  int heartbeat_fd = -1;
  /// Supervisor's heartbeat interval; the worker beats at interval/2.
  int heartbeat_interval_ms = 200;
  /// Cross-process observability export: when set, the worker collects its
  /// own metrics registry / trace-span buffer during execution and ships a
  /// snapshot inside the shard result for the supervisor to absorb.
  /// Mirrors whether the supervisor itself runs with metrics/trace enabled
  /// (it appends the matching --export-* flags when spawning).
  bool export_metrics = false;
  bool export_trace = false;
};

/// Run one shard of one round to completion.  Returns a WorkerExit code.
int run_worker(
    const WorkerOptions& options,
    const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet);

}  // namespace hdiff::serve
