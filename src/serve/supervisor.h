// The `hdiff serve` supervisor: a crash-tolerant campaign daemon that
// multiplexes one campaign over sharded worker OS processes.
//
// Execution model — round lockstep with a merge barrier.  Each round the
// supervisor computes the plan (a pure function of the committed checkpoint
// and the config), forks one worker per shard, and waits for every shard's
// durable result file.  Workers never touch the master checkpoint: they
// load it read-only, execute only the case indices their shard owns
// (shard.h assignment is content-hashed, coordination-free) and publish
// outcomes via tmp+fsync+rename.  The supervisor alone merges outcomes in
// stable case order and performs all integration — fingerprinting, dedup,
// minimization, corpus growth — exactly as the single-process engine does,
// then commits.  Findings are therefore byte-identical to `--jobs 1` no
// matter how many workers crashed along the way.
//
// Failure handling — the supervisor is a state machine per worker slot:
//
//   kIdle -> kSpawned -> kHealthy -> (exit 0 + valid result) -> kIdle
//                 |          |
//                 +----------+--> death / hang --> kDegraded
//                                      |   restart with RetryPolicy backoff
//                                      |   (deterministic jitter, capped
//                                      |    below the heartbeat interval)
//                                      v
//                            K consecutive deaths --> kQuarantined
//                                      (shard runs inline in the supervisor)
//
// Liveness is a pipe heartbeat ('h' every interval/2 from a worker-side
// thread); a slot silent for two intervals is declared hung and SIGKILLed.
// /healthz degrades (503) only while some executing slot sits in kDegraded
// — a quarantined shard is a *handled* failure and keeps the daemon ready.
//
// Crash tolerance end to end: a worker SIGKILL loses at most its unpublished
// shard-round; a supervisor kill loses at most the uncommitted round, and
// valid leftover shard results (validated by round/split/config-sig header)
// are reused on restart, so nothing is observed twice and nothing is lost.
// Graceful drain (SIGTERM/SIGINT or POST /campaigns/:id/stop) finishes the
// in-flight round, commits, and exits 0 with a checkpoint any `campaign
// resume` or next `serve` picks up.
#pragma once

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/engine.h"
#include "impls/model.h"
#include "net/error.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "obs/obs.h"
#include "serve/introspect.h"

namespace hdiff::serve {

/// Deterministic fault injection for tests: on `round`, `delay_ms` after
/// `shard`'s worker is first spawned, the supervisor signals it.  kKill
/// (SIGKILL) simulates a crash; kStop (SIGSTOP) freezes the process so its
/// heartbeats stop — the hang-detection path — and the supervisor's
/// follow-up SIGKILL reaps it.  One-shot per (round, shard).
struct ChaosAction {
  enum class Kind { kKill, kStop };
  std::size_t round = 0;
  std::size_t shard = 0;
  Kind kind = Kind::kKill;
  int delay_ms = 20;
};

struct ServeConfig {
  /// The campaign to run; `campaign.rounds` is the commit target (the
  /// daemon exits 0 once `rounds + 1` total rounds are committed).
  campaign::CampaignConfig campaign;
  /// Campaign id on the control plane (POST /campaigns/<id>/stop).
  std::string campaign_id = "default";
  std::size_t shards = 4;
  /// Control-plane port; 0 binds an ephemeral port.  Fixed ports are
  /// acquired with `bind_retry` (EADDRINUSE from a dying predecessor).
  std::uint16_t port = 0;
  net::RetryPolicy bind_retry{};
  /// Heartbeat interval H: workers beat every H/2; a slot silent for 2H is
  /// hung; restart backoff is capped at H/2 so a crashed worker is back
  /// within one interval.
  int heartbeat_interval_ms = 200;
  /// Consecutive deaths (of one shard within one round) before the shard is
  /// quarantined and executed inline by the supervisor.
  int quarantine_after = 3;
  /// Backoff schedule between respawns of a dying worker (attempts field
  /// is unused; quarantine_after bounds the retries).
  net::RetryPolicy restart{.backoff_base_ms = 2, .backoff_max_ms = 50};
  /// Worker binary (argv[0] for posix_spawn) — the hdiff CLI itself; the
  /// supervisor appends the `serve-worker` subcommand and shard geometry.
  std::string worker_binary;
  /// Extra flags reproducing `campaign` for the worker process (e.g.
  /// "--mini", "--budget", "48").  The worker revalidates via config sig.
  std::vector<std::string> worker_args;
  /// Signal-handler drain flag (SIGTERM/SIGINT): when it becomes nonzero
  /// the supervisor finishes the current round, commits and exits 0.
  const volatile std::sig_atomic_t* drain_flag = nullptr;
  std::vector<ChaosAction> chaos;
  obs::Observability obs;
  /// Fleet-wide metrics merge target (introspect.h).  When set, worker
  /// registry snapshots (shipped inside shard results) are absorbed here
  /// and /metrics serves the origin-labeled merged exposition; the caller
  /// owns it so `--metrics-out` can render after run() returns.  When
  /// null but `obs.metrics` is set, the supervisor uses an internal one
  /// (merged totals on /metrics, nothing to dump afterwards).
  FleetMetrics* fleet = nullptr;
  /// Flight-recorder ring size (lifecycle events kept in memory and
  /// replayed on GET /events; the ring persists in the state dir).
  std::size_t flight_capacity = 1024;
};

/// One worker slot's lifecycle state, surfaced on /status.
enum class WorkerHealth {
  kIdle,         ///< shard finished (or round not started)
  kSpawned,      ///< forked, no heartbeat seen yet
  kHealthy,      ///< heartbeating
  kDegraded,     ///< died/hung; respawn pending (drives /healthz 503)
  kQuarantined,  ///< gave up on workers; supervisor runs the shard inline
};

std::string_view to_string(WorkerHealth health) noexcept;

struct ServeReport {
  std::string error;
  std::size_t rounds_run = 0;  ///< rounds committed by this call
  std::size_t worker_spawns = 0;
  std::size_t worker_deaths = 0;    ///< crashes + hangs, pre-quarantine
  std::size_t worker_hangs = 0;     ///< SIGKILLed for missed heartbeats
  std::size_t worker_restarts = 0;
  std::size_t quarantined_shards = 0;
  std::size_t reused_shard_results = 0;  ///< leftovers adopted on resume
  std::size_t total_findings = 0;
  std::size_t corpus_entries = 0;
  bool resumed = false;
  bool drained = false;  ///< stopped by drain/stop, not rounds exhausted
};

/// The daemon.  Constructing binds the control-plane listener (throws
/// net::ChainFault when the port cannot be acquired); `run()` blocks until
/// the round target is reached, a drain is requested, or a fatal state
/// error occurs.  Single-threaded: the control plane is pumped from the
/// supervision loop between heartbeat reads and waitpid sweeps.
class Supervisor {
 public:
  Supervisor(
      ServeConfig config,
      const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet);

  std::uint16_t port() const noexcept { return listener_.port(); }

  ServeReport run();

 private:
  ServeConfig config_;
  const std::vector<std::unique_ptr<impls::HttpImplementation>>& fleet_;
  net::TcpListener listener_;
};

}  // namespace hdiff::serve
