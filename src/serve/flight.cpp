#include "serve/flight.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "campaign/store.h"
#include "report/json.h"

namespace hdiff::serve {

namespace {

std::string index_token(std::size_t v) {
  return v == FlightEvent::kNone ? "-" : std::to_string(v);
}

bool parse_index(const std::string& token, std::size_t* out) {
  if (token == "-") {
    *out = FlightEvent::kNone;
    return true;
  }
  *out = static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10));
  return true;
}

}  // namespace

std::string render_flight_event(const FlightEvent& event) {
  return "ev=" + std::to_string(event.seq) + " " +
         std::to_string(event.ts_ms) + " " + campaign::field_enc(event.kind) +
         " " + index_token(event.round) + " " + index_token(event.shard) +
         " " + campaign::field_enc(event.detail);
}

bool parse_flight_event(std::string_view line, FlightEvent* out) {
  *out = FlightEvent{};
  constexpr std::string_view kPrefix = "ev=";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::vector<std::string> tokens =
      campaign::split_fields(line.substr(kPrefix.size()));
  if (tokens.size() != 6) return false;
  out->seq = std::strtoull(tokens[0].c_str(), nullptr, 10);
  out->ts_ms = std::strtoull(tokens[1].c_str(), nullptr, 10);
  if (out->seq == 0) return false;
  if (!campaign::field_dec(tokens[2], &out->kind)) return false;
  if (!parse_index(tokens[3], &out->round)) return false;
  if (!parse_index(tokens[4], &out->shard)) return false;
  if (!campaign::field_dec(tokens[5], &out->detail)) return false;
  return true;
}

FlightRecorder::FlightRecorder(std::string state_dir, const obs::Clock* clock,
                               std::size_t capacity)
    : state_dir_(std::move(state_dir)),
      clock_(clock ? clock : &obs::steady_clock_instance()),
      capacity_(capacity == 0 ? 1 : capacity) {}

std::string FlightRecorder::path(const std::string& state_dir) {
  return state_dir + "/flight.events";
}

void FlightRecorder::load() {
  std::ifstream in(path(state_dir_), std::ios::binary);
  if (in) {
    std::string line;
    std::size_t file_lines = 0;
    while (std::getline(in, line)) {
      ++file_lines;
      FlightEvent event;
      if (!parse_flight_event(line, &event)) continue;  // torn tail / noise
      if (event.seq >= next_seq_) next_seq_ = event.seq + 1;
      ring_.push_back(std::move(event));
      if (ring_.size() > capacity_) ring_.pop_front();
    }
    in.close();
    // Restart churn grows the file unboundedly while the ring stays
    // capped; rewrite it from the ring once it is several rings deep.
    if (file_lines > 4 * capacity_) {
      std::string compact;
      for (const FlightEvent& event : ring_) {
        compact += render_flight_event(event) + "\n";
      }
      campaign::write_file_atomic_durable(path(state_dir_), compact);
    }
  }
}

void FlightRecorder::append_line(const FlightEvent& event) {
  if (!out_.is_open()) {
    std::error_code ec;
    std::filesystem::create_directories(state_dir_, ec);
    out_.open(path(state_dir_), std::ios::binary | std::ios::app);
  }
  if (!out_.is_open()) return;  // state dir unwritable: ring still works
  out_ << render_flight_event(event) << "\n";
  out_.flush();
}

void FlightRecorder::record(std::string_view kind, std::size_t round,
                            std::size_t shard, std::string_view detail) {
  FlightEvent event;
  event.seq = next_seq_++;
  event.ts_ms = clock_->now_us() / 1000;
  event.kind.assign(kind);
  event.round = round;
  event.shard = shard;
  event.detail.assign(detail);
  append_line(event);
  ring_.push_back(std::move(event));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<FlightEvent> FlightRecorder::events_since(
    std::uint64_t since) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& event : ring_) {
    if (event.seq > since) out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::events_json(std::uint64_t since) const {
  std::string out = "{\"next_seq\":" + std::to_string(next_seq_) +
                    ",\"events\":[";
  bool first = true;
  for (const FlightEvent& event : ring_) {
    if (event.seq <= since) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(event.seq) +
           ",\"ts_ms\":" + std::to_string(event.ts_ms) +
           ",\"kind\":" + report::json_string(event.kind);
    if (event.round != FlightEvent::kNone) {
      out += ",\"round\":" + std::to_string(event.round);
    }
    if (event.shard != FlightEvent::kNone) {
      out += ",\"shard\":" + std::to_string(event.shard);
    }
    if (!event.detail.empty()) {
      out += ",\"detail\":" + report::json_string(event.detail);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace hdiff::serve
