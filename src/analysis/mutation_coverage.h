// MutationCoverage: cross-reference the `MutationKind` operator set against
// the grammar-derived seed corpus.
//
// For every generation target (grammar rule × embed position) the analyzer
// enumerates a bounded sample of derivations, embeds each into a canonical
// request (the same `embed_value` path the real generator uses), runs the
// mutation engine on it, and tallies which operators found applicable sites.
// Blind spots surface as (DESIGN.md §9):
//
//   MC001 warning  mutation operator with zero applicable sites across the
//                  whole corpus (the operator set advertises a capability
//                  the engine never exercises)
//   MC002 warning  generation target no operator can perturb (seeds from
//                  that production reach the chain unmutated)
//   MC003 info     target rule not derivable from the grammar (no seeds, so
//                  coverage is vacuous there)
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "abnf/ast.h"
#include "analysis/diagnostic.h"
#include "core/abnf_testgen.h"
#include "core/mutation.h"

namespace hdiff::analysis {

struct MutationCoverageOptions {
  /// Targets to measure; empty = core::default_abnf_targets().
  std::vector<core::AbnfTarget> targets;
  /// Derivations sampled per target (a fraction of the generator's real
  /// budget — applicability saturates quickly).
  std::size_t values_per_target = 16;
  core::MutationOptions mutation;
  std::size_t jobs = 1;
};

/// Raw tallies, exposed for the report table and the tests.
struct MutationCoverageStats {
  /// Applicable-site count per operator (key: to_string(MutationKind)).
  std::map<std::string, std::size_t> sites_per_kind;
  /// Mutant count per target rule (key: "rule@position").
  std::map<std::string, std::size_t> mutants_per_target;
  std::size_t seeds = 0;
  std::size_t mutants = 0;
};

struct MutationCoverageResult {
  std::vector<Diagnostic> diagnostics;
  MutationCoverageStats stats;
};

MutationCoverageResult analyze_mutation_coverage(
    const abnf::Grammar& grammar,
    const MutationCoverageOptions& options = {});

}  // namespace hdiff::analysis
