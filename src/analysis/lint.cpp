#include "analysis/lint.h"

#include <cstdio>
#include <utility>

#include "report/json.h"
#include "report/table.h"

namespace hdiff::analysis {
namespace {

/// Time one analyzer under an optional obs bundle: a span around the run
/// plus per-analyzer diagnostic counters.
template <typename Fn>
std::vector<Diagnostic> timed_analyzer(const obs::Observability& o,
                                       const std::string& name,
                                       std::vector<AnalyzerStats>& stats,
                                       Fn&& fn) {
  const obs::Clock& clock = o.effective_clock();
  std::uint64_t start = clock.now_us();
  std::vector<Diagnostic> diags;
  {
    obs::Span span(o.trace, "lint:" + name, "lint");
    diags = fn();
    if (o.trace) {
      span.arg("diagnostics", std::to_string(diags.size()));
    }
  }
  std::uint64_t elapsed = clock.now_us() - start;
  if (o.metrics) {
    o.metrics->counter("hdiff_lint_" + name + "_diagnostics_total")
        .add(diags.size());
    o.metrics->histogram("hdiff_lint_" + name + "_micros").observe(elapsed);
  }
  stats.push_back(AnalyzerStats{name, diags.size(), elapsed});
  return diags;
}

}  // namespace

std::vector<Waiver> default_corpus_waivers() {
  // The adaptor merges documents most-recent-wins, so RFC 7230/7231 prose
  // pointers like `port = <port, see [RFC3986], Section 3.2.3>` resolve to
  // self-references that *replace* RFC 3986's real definitions — the merged
  // grammar ends up with `port = port` and friends.  The generator never
  // falls into these cycles because every affected rule carries a
  // predefined value (load_default_http_predefined) that stops traversal,
  // and repairing the merge would change the generated corpus and perturb
  // the reproduced findings.  Each self-looped rule is enumerated (never
  // "*") so a *new* left recursion elsewhere still gates the lint.
  const char* kProseSelfLoopReason =
      "prose alias collapses to a self-reference under most-recent-wins "
      "merging; traversal stops at this rule's predefined values";
  std::vector<Waiver> waivers;
  for (const char* rule :
       {"absolute-uri", "authority", "fragment", "host", "http-date",
        "path-abempty", "port", "query", "relative-part", "segment",
        "uri-host", "uri-reference"}) {
    waivers.push_back({"GL001", rule, kProseSelfLoopReason});
  }
  // The corpus embeds *excerpts*: a few referenced definitions (e.g.
  // `comment` for Server/User-Agent/Via) fall outside the excerpt windows.
  // All of them are outside every generation target's cone.
  waivers.push_back({"GL002", "*",
                     "corpus excerpts omit a few referenced definitions; "
                     "all outside every generation target"});
  // (The historical MC001 "unicode-in-value" waiver is gone: mutate() now
  // has a real mid-value unicode splice site, placed after the sc-* loop so
  // the capped generation paths — 24 mutants/seed ABNF, 12/case SR — never
  // reach it and the reproduced corpus stays byte-identical, while the
  // coverage measurement's larger budget sees the operator fire.)
  return waivers;
}

LintResult run_lint(const abnf::Grammar& grammar,
                    const core::CustomRuleEngine& engine,
                    const LintOptions& options) {
  LintResult result;
  obs::Span total(options.obs.trace, "lint", "lint");

  GrammarLintOptions gopts = options.grammar;
  if (gopts.jobs <= 1) gopts.jobs = options.jobs;
  auto grammar_diags =
      timed_analyzer(options.obs, "grammar", result.analyzers,
                     [&] { return lint_grammar(grammar, gopts); });

  auto rulebase_diags =
      timed_analyzer(options.obs, "rulebase", result.analyzers,
                     [&] { return lint_rulebase(engine); });

  std::vector<Diagnostic> mutation_diags;
  if (options.run_mutation_coverage) {
    MutationCoverageOptions mopts = options.mutation;
    if (mopts.jobs <= 1) mopts.jobs = options.jobs;
    mutation_diags =
        timed_analyzer(options.obs, "mutation", result.analyzers, [&] {
          auto mc = analyze_mutation_coverage(grammar, mopts);
          result.mutation_stats = std::move(mc.stats);
          return std::move(mc.diagnostics);
        });
  }

  auto& diags = result.diagnostics;
  diags.reserve(grammar_diags.size() + rulebase_diags.size() +
                mutation_diags.size());
  auto take = [&diags](std::vector<Diagnostic>& src) {
    diags.insert(diags.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
  };
  take(grammar_diags);
  take(rulebase_diags);
  take(mutation_diags);

  std::vector<Waiver> waivers = options.waivers;
  if (options.use_default_corpus_waivers) {
    auto defaults = default_corpus_waivers();
    waivers.insert(waivers.end(), std::make_move_iterator(defaults.begin()),
                   std::make_move_iterator(defaults.end()));
  }
  apply_waivers(diags, waivers);
  sort_diagnostics(diags);
  result.counts = count_diagnostics(diags);

  // Ranked gap sites over the same roots the grammar lint uses — the
  // campaign checkpoint and `--json` consumers read identical ids.
  {
    obs::Span span(options.obs.trace, "lint:gap_sites", "lint");
    result.gap_sites =
        build_coverage_plan(grammar, options.grammar.roots).sites;
  }

  if (options.obs.metrics) {
    auto& m = *options.obs.metrics;
    m.counter("hdiff_lint_diagnostics_total").add(diags.size());
    m.counter("hdiff_lint_waived_total").add(result.counts.waived);
    m.gauge("hdiff_lint_errors").set(
        static_cast<std::int64_t>(result.counts.errors));
    m.gauge("hdiff_lint_warnings").set(
        static_cast<std::int64_t>(result.counts.warnings));
  }
  return result;
}

std::string lint_json(const LintResult& result) {
  report::JsonWriter w;
  w.begin_object();
  w.key("diagnostics").begin_array();
  for (const auto& d : result.diagnostics) {
    w.begin_object();
    w.key("severity").value(to_string(d.severity));
    w.key("code").value(d.code);
    w.key("analyzer").value(d.analyzer);
    w.key("rule").value(d.rule);
    w.key("span").value(d.span);
    w.key("message").value(d.message);
    w.key("waived").value(d.waived);
    if (d.waived) w.key("waiver_reason").value(d.waiver_reason);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.key("errors").value(static_cast<std::uint64_t>(result.counts.errors));
  w.key("warnings").value(static_cast<std::uint64_t>(result.counts.warnings));
  w.key("infos").value(static_cast<std::uint64_t>(result.counts.infos));
  w.key("waived").value(static_cast<std::uint64_t>(result.counts.waived));
  w.key("exit_code").value(lint_exit_code(result));
  w.end_object();
  w.key("analyzers").begin_array();
  for (const auto& a : result.analyzers) {
    w.begin_object();
    w.key("name").value(a.name);
    w.key("diagnostics").value(static_cast<std::uint64_t>(a.diagnostics));
    w.key("micros").value(a.micros);
    w.end_object();
  }
  w.end_array();
  // Ranked semantic-gap sites (schema documented in DESIGN.md §14): sorted
  // by rank desc / rule / alternative pair, ids stable for a given corpus.
  // `witness` is lowercase hex of up to 4 overlap bytes a prober can splice.
  w.key("gap_sites").begin_array();
  for (const auto& s : result.gap_sites) {
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(s.id));
    w.key("rule").value(s.rule);
    w.key("production").value(static_cast<std::uint64_t>(s.production));
    w.key("alternatives").begin_array();
    w.value(static_cast<std::uint64_t>(s.alt_a));
    w.value(static_cast<std::uint64_t>(s.alt_b));
    w.end_array();
    w.key("kind").value(s.kind == 'b' ? "byte-overlap" : "first-overlap");
    w.key("width").value(static_cast<std::uint64_t>(s.width));
    w.key("rank").value(static_cast<std::uint64_t>(s.rank));
    w.key("overlap").value(format_byte_class(s.overlap));
    std::string witness_hex;
    for (unsigned char c : s.witness) {
      char buf[3];
      std::snprintf(buf, sizeof buf, "%02x", c);
      witness_hex += buf;
    }
    w.key("witness").value(witness_hex);
    w.end_object();
  }
  w.end_array();
  w.key("mutation_coverage").begin_object();
  w.key("seeds").value(static_cast<std::uint64_t>(result.mutation_stats.seeds));
  w.key("mutants")
      .value(static_cast<std::uint64_t>(result.mutation_stats.mutants));
  w.key("sites_per_kind").begin_object();
  for (const auto& [kind, count] : result.mutation_stats.sites_per_kind) {
    w.key(kind).value(static_cast<std::uint64_t>(count));
  }
  w.end_object();
  w.key("mutants_per_target").begin_object();
  for (const auto& [target, count] : result.mutation_stats.mutants_per_target) {
    w.key(target).value(static_cast<std::uint64_t>(count));
  }
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string lint_text(const LintResult& result) {
  std::string out;
  if (!result.diagnostics.empty()) {
    report::Table table({"severity", "code", "analyzer", "rule", "message"});
    for (const auto& d : result.diagnostics) {
      std::string message = d.message;
      if (!d.span.empty()) message += " (" + d.span + ")";
      std::string severity(to_string(d.severity));
      if (d.waived) severity += " [waived]";
      table.add_row({std::move(severity), d.code, d.analyzer, d.rule,
                     std::move(message)});
    }
    out += table.render();
    out += '\n';
  }
  out += "lint: " + std::to_string(result.counts.errors) + " error(s), " +
         std::to_string(result.counts.warnings) + " warning(s), " +
         std::to_string(result.counts.infos) + " info(s), " +
         std::to_string(result.counts.waived) + " waived\n";
  return out;
}

int lint_exit_code(const LintResult& result) noexcept {
  if (result.counts.errors > 0) return 4;
  if (result.counts.warnings > 0) return 3;
  return 0;
}

}  // namespace hdiff::analysis
