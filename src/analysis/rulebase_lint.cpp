#include "analysis/rulebase_lint.h"

#include <map>
#include <utility>

#include "impls/verdict.h"

namespace hdiff::analysis {
namespace {

using core::AttackClass;
using core::HMetrics;
using core::PairMetrics;
using core::Stage;

/// One synthetic chain scenario.  Owns the metrics that `PairMetrics`
/// references.
struct PairProbe {
  std::string name;
  HMetrics front;
  HMetrics back;
  impls::RelayOutcome relay;
  bool has_relay = true;
};

HMetrics base_front() {
  HMetrics m;
  m.uuid = "lint-probe";
  m.impl = "probe-front";
  m.stage = Stage::kProxy;
  m.forwarded = true;  // the engine only evaluates forwarded fronts
  m.host = "origin.example";
  m.version = "HTTP/1.1";
  return m;
}

HMetrics base_back() {
  HMetrics m;
  m.uuid = "lint-probe";
  m.impl = "probe-back";
  m.stage = Stage::kReplay;
  m.via_proxy = "probe-front";
  m.status_code = 200;
  m.host = "origin.example";
  m.version = "HTTP/1.1";
  return m;
}

/// The battery: canonical attack shapes plus clean and near-miss controls.
/// Fixed and ordered — signatures must be comparable across runs.
std::vector<PairProbe> make_pair_battery() {
  std::vector<PairProbe> battery;
  auto add = [&battery](std::string name, auto mutate) {
    PairProbe p;
    p.name = std::move(name);
    p.front = base_front();
    p.back = base_back();
    mutate(p);
    battery.push_back(std::move(p));
  };

  add("clean", [](PairProbe&) {});
  add("smuggled-remainder", [](PairProbe& p) {
    p.back.leftover = "GET /admin HTTP/1.1\r\n\r\n";
  });
  add("desync-hang", [](PairProbe& p) {
    p.back.status_code = 0;
    p.back.incomplete = true;
  });
  add("host-disagreement", [](PairProbe& p) {
    p.back.host = "attacker.example";
  });
  add("relay-desync", [](PairProbe& p) {
    p.relay.desync = true;
    p.relay.stale_backend_bytes = "HTTP/1.1 200 OK\r\n\r\nreal";
    p.relay.relayed_status = 100;
  });
  add("cached-error", [](PairProbe& p) {
    p.front.would_cache = true;
    p.back.status_code = 404;
  });
  add("cached-ok", [](PairProbe& p) { p.front.would_cache = true; });
  add("plain-400", [](PairProbe& p) { p.back.status_code = 400; });
  add("plain-503", [](PairProbe& p) { p.back.status_code = 503; });
  add("no-relay-observation", [](PairProbe& p) { p.has_relay = false; });
  add("combined-smuggle-route-cache", [](PairProbe& p) {
    p.back.leftover = "GET /poison HTTP/1.1\r\n\r\n";
    p.back.host = "attacker.example";
    p.relay.desync = true;
    p.front.would_cache = true;
  });
  return battery;
}

/// Synthetic direct-observation battery for `DirectRule`s.
std::vector<std::pair<std::string, HMetrics>> make_direct_battery() {
  std::vector<std::pair<std::string, HMetrics>> battery;
  auto add = [&battery](std::string name, auto mutate) {
    HMetrics m;
    m.uuid = "lint-probe";
    m.impl = "probe-back";
    m.stage = Stage::kDirect;
    m.status_code = 200;
    m.host = "origin.example";
    m.version = "HTTP/1.1";
    mutate(m);
    battery.emplace_back(std::move(name), std::move(m));
  };
  add("clean", [](HMetrics&) {});
  add("rejected-400", [](HMetrics& m) { m.status_code = 400; });
  add("leftover", [](HMetrics& m) {
    m.leftover = "GET /admin HTTP/1.1\r\n\r\n";
  });
  add("incomplete", [](HMetrics& m) {
    m.status_code = 0;
    m.incomplete = true;
  });
  add("missing-host", [](HMetrics& m) { m.host.clear(); });
  return battery;
}

Diagnostic make_diag(Severity sev, std::string code, std::string rule,
                     std::string span, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.analyzer = "rulebase";
  d.rule = std::move(rule);
  d.span = std::move(span);
  d.message = std::move(message);
  return d;
}

std::string attack_name(AttackClass a) {
  return std::string(core::to_string(a));
}

/// Report RB001/RB002/RB003/RB004 over one rule family's signatures.
void lint_signatures(const std::vector<RuleSignature>& sigs,
                     const std::string& family,
                     std::vector<Diagnostic>& out) {
  std::map<std::string, std::size_t> seen_names;
  for (const auto& sig : sigs) {
    auto [it, inserted] = seen_names.emplace(sig.name, 1);
    if (!inserted) {
      ++it->second;
      out.push_back(make_diag(
          Severity::kWarning, "RB002", sig.name, family,
          "rule name registered " + std::to_string(it->second) +
              " times: later registrations shadow reporting of earlier "
              "ones"));
    }
  }

  for (std::size_t i = 0; i < sigs.size(); ++i) {
    bool fires_ever = false;
    for (bool f : sigs[i].fires) fires_ever = fires_ever || f;
    if (!fires_ever) {
      out.push_back(make_diag(
          Severity::kWarning, "RB004", sigs[i].name, family,
          "rule never fires on any battery probe (dead rule?)"));
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (sigs[i].name == sigs[j].name) continue;  // RB002 already covers
      if (sigs[i].fires != sigs[j].fires || !fires_ever) continue;
      if (sigs[i].attack == sigs[j].attack) {
        out.push_back(make_diag(
            Severity::kWarning, "RB001", sigs[i].name, sigs[j].name,
            "identical fire signature and attack class as rule '" +
                sigs[j].name + "': one is redundant"));
      } else {
        out.push_back(make_diag(
            Severity::kError, "RB003", sigs[i].name, sigs[j].name,
            "identical fire signature as rule '" + sigs[j].name +
                "' but conflicting verdicts (" +
                attack_name(sigs[i].attack) + " vs " +
                attack_name(sigs[j].attack) + ")"));
      }
    }
  }
}

}  // namespace

std::vector<std::string> pair_probe_names() {
  std::vector<std::string> names;
  for (const auto& p : make_pair_battery()) names.push_back(p.name);
  return names;
}

std::vector<RuleSignature> pair_rule_signatures(
    const core::CustomRuleEngine& engine) {
  const auto battery = make_pair_battery();
  std::vector<RuleSignature> sigs;
  sigs.reserve(engine.pair_rules().size());
  for (const auto& rule : engine.pair_rules()) {
    RuleSignature sig;
    sig.name = rule.name;
    sig.attack = rule.attack;
    sig.fires.reserve(battery.size());
    for (const auto& probe : battery) {
      PairMetrics pm{probe.front, probe.back,
                     probe.has_relay ? &probe.relay : nullptr};
      bool fired = rule.predicate && !rule.predicate(pm).empty();
      sig.fires.push_back(fired);
    }
    sigs.push_back(std::move(sig));
  }
  return sigs;
}

std::vector<Diagnostic> lint_rulebase(const core::CustomRuleEngine& engine) {
  std::vector<Diagnostic> diags;

  lint_signatures(pair_rule_signatures(engine), "pair", diags);

  const auto direct_battery = make_direct_battery();
  std::vector<RuleSignature> direct_sigs;
  direct_sigs.reserve(engine.direct_rules().size());
  for (const auto& rule : engine.direct_rules()) {
    RuleSignature sig;
    sig.name = rule.name;
    sig.attack = rule.attack;
    for (const auto& [name, metrics] : direct_battery) {
      bool fired = rule.predicate && !rule.predicate(metrics).empty();
      sig.fires.push_back(fired);
    }
    direct_sigs.push_back(std::move(sig));
  }
  lint_signatures(direct_sigs, "direct", diags);

  sort_diagnostics(diags);
  return diags;
}

}  // namespace hdiff::analysis
