#include "analysis/grammar_lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <set>
#include <thread>

namespace hdiff::analysis {
namespace {

using abnf::Alternation;
using abnf::CharVal;
using abnf::Concatenation;
using abnf::Grammar;
using abnf::Node;
using abnf::NodePtr;
using abnf::NumVal;
using abnf::Option;
using abnf::ProseVal;
using abnf::Repetition;
using abnf::RuleRef;

unsigned char lower(char c) noexcept {
  return static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(c)));
}

bool ci_equal(const std::string& a, const std::string& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

/// Rendered ABNF excerpt for spans, bounded so reports stay one-line.
std::string excerpt(const NodePtr& node) {
  std::string s = abnf::to_string(node);
  constexpr std::size_t kMax = 60;
  if (s.size() > kMax) {
    s.resize(kMax - 3);
    s += "...";
  }
  return s;
}

bool node_nullable(const NodePtr& node,
                   const std::map<std::string, bool>& rule_nullable) {
  if (!node) return true;
  if (const auto* alt = node->as<Alternation>()) {
    for (const auto& a : alt->alts) {
      if (node_nullable(a, rule_nullable)) return true;
    }
    return false;
  }
  if (const auto* cat = node->as<Concatenation>()) {
    for (const auto& p : cat->parts) {
      if (!node_nullable(p, rule_nullable)) return false;
    }
    return true;
  }
  if (const auto* rep = node->as<Repetition>()) {
    return rep->min == 0 || node_nullable(rep->element, rule_nullable);
  }
  if (node->as<Option>() != nullptr) return true;
  if (const auto* cv = node->as<CharVal>()) return cv->text.empty();
  if (const auto* ref = node->as<RuleRef>()) {
    auto it = rule_nullable.find(ref->name);
    return it != rule_nullable.end() && it->second;
  }
  return false;  // NumVal, ProseVal
}

/// Byte class a terminal can start with.  Case-insensitive char-vals admit
/// both cases of their first character.
void add_first_of_char_val(const CharVal& cv, std::bitset<256>& out) {
  if (cv.text.empty()) return;
  auto c = static_cast<unsigned char>(cv.text.front());
  out.set(c);
  if (!cv.case_sensitive) {
    out.set(lower(cv.text.front()));
    out.set(static_cast<unsigned char>(
        std::toupper(static_cast<unsigned char>(cv.text.front()))));
  }
}

std::bitset<256> node_first(
    const NodePtr& node, const std::map<std::string, bool>& rule_nullable,
    const std::map<std::string, std::bitset<256>>& rule_first) {
  std::bitset<256> out;
  if (!node) return out;
  if (const auto* alt = node->as<Alternation>()) {
    for (const auto& a : alt->alts) {
      out |= node_first(a, rule_nullable, rule_first);
    }
    return out;
  }
  if (const auto* cat = node->as<Concatenation>()) {
    for (const auto& p : cat->parts) {
      out |= node_first(p, rule_nullable, rule_first);
      if (!node_nullable(p, rule_nullable)) break;
    }
    return out;
  }
  if (const auto* rep = node->as<Repetition>()) {
    return node_first(rep->element, rule_nullable, rule_first);
  }
  if (const auto* opt = node->as<Option>()) {
    return node_first(opt->element, rule_nullable, rule_first);
  }
  if (const auto* cv = node->as<CharVal>()) {
    add_first_of_char_val(*cv, out);
    return out;
  }
  if (const auto* nv = node->as<NumVal>()) {
    if (nv->is_range) {
      for (std::uint32_t c = nv->lo; c <= nv->hi && c < 256; ++c) out.set(c);
    } else if (!nv->sequence.empty() && nv->sequence.front() < 256) {
      out.set(nv->sequence.front());
    }
    return out;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    auto it = rule_first.find(ref->name);
    if (it != rule_first.end()) out |= it->second;
    return out;
  }
  return out;  // ProseVal: unknowable, treated as empty
}

/// Rule references that can occur at the leftmost position of `node` —
/// i.e. through a (possibly empty) nullable prefix.
void collect_left_calls(const NodePtr& node,
                        const std::map<std::string, bool>& rule_nullable,
                        std::vector<std::string>& out) {
  if (!node) return;
  if (const auto* alt = node->as<Alternation>()) {
    for (const auto& a : alt->alts) collect_left_calls(a, rule_nullable, out);
    return;
  }
  if (const auto* cat = node->as<Concatenation>()) {
    for (const auto& p : cat->parts) {
      collect_left_calls(p, rule_nullable, out);
      if (!node_nullable(p, rule_nullable)) break;
    }
    return;
  }
  if (const auto* rep = node->as<Repetition>()) {
    collect_left_calls(rep->element, rule_nullable, out);
    return;
  }
  if (const auto* opt = node->as<Option>()) {
    collect_left_calls(opt->element, rule_nullable, out);
    return;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    out.push_back(ref->name);
    return;
  }
}

/// Does alternative `a` accept everything alternative `b` accepts?  Used
/// for GL004: a later branch subsumed by an earlier one can never match.
/// Conservative: only shapes we can decide exactly return true.
bool subsumes(const NodePtr& a, const NodePtr& b);

bool subsumes_char_val(const CharVal& a, const CharVal& b) {
  if (!ci_equal(a.text, b.text)) return false;
  if (!a.case_sensitive) return true;        // "foo" covers every casing
  return b.case_sensitive && a.text == b.text;
}

bool subsumes_num_val(const NumVal& a, const NumVal& b) {
  if (a.is_range && b.is_range) return a.lo <= b.lo && b.hi <= a.hi;
  if (a.is_range && !b.is_range) {
    return b.sequence.size() == 1 && a.lo <= b.sequence.front() &&
           b.sequence.front() <= a.hi;
  }
  if (!a.is_range && !b.is_range) return a.sequence == b.sequence;
  return false;
}

bool subsumes(const NodePtr& a, const NodePtr& b) {
  if (!a || !b) return false;
  if (const auto* acv = a->as<CharVal>()) {
    const auto* bcv = b->as<CharVal>();
    return bcv != nullptr && subsumes_char_val(*acv, *bcv);
  }
  if (const auto* anv = a->as<NumVal>()) {
    const auto* bnv = b->as<NumVal>();
    return bnv != nullptr && subsumes_num_val(*anv, *bnv);
  }
  if (const auto* aref = a->as<RuleRef>()) {
    const auto* bref = b->as<RuleRef>();
    return bref != nullptr && aref->name == bref->name;
  }
  if (const auto* acat = a->as<Concatenation>()) {
    const auto* bcat = b->as<Concatenation>();
    if (bcat == nullptr || acat->parts.size() != bcat->parts.size()) {
      return false;
    }
    for (std::size_t i = 0; i < acat->parts.size(); ++i) {
      if (!subsumes(acat->parts[i], bcat->parts[i])) return false;
    }
    return true;
  }
  if (const auto* aalt = a->as<Alternation>()) {
    const auto* balt = b->as<Alternation>();
    if (balt == nullptr || aalt->alts.size() != balt->alts.size()) {
      return false;
    }
    for (std::size_t i = 0; i < aalt->alts.size(); ++i) {
      if (!subsumes(aalt->alts[i], balt->alts[i])) return false;
    }
    return true;
  }
  if (const auto* arep = a->as<Repetition>()) {
    const auto* brep = b->as<Repetition>();
    return brep != nullptr && arep->min == brep->min &&
           arep->max == brep->max && subsumes(arep->element, brep->element);
  }
  if (const auto* aopt = a->as<Option>()) {
    const auto* bopt = b->as<Option>();
    return bopt != nullptr && subsumes(aopt->element, bopt->element);
  }
  return false;  // ProseVal: opaque
}

/// Byte class of an alternative consisting of exactly one terminal, for
/// GL006.  Returns an empty set for non-terminal shapes.
std::bitset<256> terminal_byte_class(const NodePtr& node) {
  std::bitset<256> out;
  if (!node) return out;
  if (const auto* cv = node->as<CharVal>()) {
    if (cv->text.size() == 1) add_first_of_char_val(*cv, out);
    return out;
  }
  if (const auto* nv = node->as<NumVal>()) {
    if (nv->is_range) {
      for (std::uint32_t c = nv->lo; c <= nv->hi && c < 256; ++c) out.set(c);
    } else if (nv->sequence.size() == 1 && nv->sequence.front() < 256) {
      out.set(nv->sequence.front());
    }
    return out;
  }
  return out;
}

/// Outcome classes of one alternative pair, shared by the GL004/GL005/GL006
/// diagnostics and collect_gap_sites (single source of truth for the pair
/// logic).
enum class PairKind { kSubsumed, kTerminalOverlap, kFirstOverlap };

/// Visit every colliding pair (i < j, 0-based) of one alternation.  The
/// callback receives the overlap byte class (empty for kSubsumed).
template <typename Fn>
void for_each_colliding_pair(const std::vector<NodePtr>& alts,
                             const GrammarFacts& facts, Fn&& fn) {
  for (std::size_t j = 0; j < alts.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (subsumes(alts[i], alts[j])) {
        fn(i, j, PairKind::kSubsumed, std::bitset<256>{});
        continue;
      }
      const auto ti = terminal_byte_class(alts[i]);
      const auto tj = terminal_byte_class(alts[j]);
      if (ti.any() && tj.any()) {
        // Pure terminals: GL006 decides, GL005 would duplicate.
        const auto both = ti & tj;
        if (both.any()) fn(i, j, PairKind::kTerminalOverlap, both);
        continue;
      }
      const auto fi = node_first(alts[i], facts.nullable, facts.first);
      const auto fj = node_first(alts[j], facts.nullable, facts.first);
      const auto both = fi & fj;
      if (both.any()) fn(i, j, PairKind::kFirstOverlap, both);
    }
  }
}

struct ScanContext {
  const Grammar* grammar = nullptr;
  const GrammarFacts* facts = nullptr;
};

Diagnostic make_diag(Severity sev, std::string code, std::string rule,
                     std::string span, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.analyzer = "grammar";
  d.rule = std::move(rule);
  d.span = std::move(span);
  d.message = std::move(message);
  return d;
}

/// Structural checks that only need the rule itself plus precomputed facts.
/// Safe to run per-rule in parallel.
void scan_node(const std::string& rule_name, const NodePtr& node,
               const ScanContext& ctx, std::vector<Diagnostic>& out) {
  if (!node) return;
  const auto& nullable = ctx.facts->nullable;

  if (const auto* rep = node->as<Repetition>()) {
    if (rep->max && rep->min > *rep->max) {
      out.push_back(make_diag(
          Severity::kError, "GL008", rule_name, excerpt(node),
          "repetition lower bound " + std::to_string(rep->min) +
              " exceeds upper bound " + std::to_string(*rep->max)));
    }
    if (!rep->max && node_nullable(rep->element, nullable)) {
      out.push_back(make_diag(
          Severity::kWarning, "GL003", rule_name, excerpt(node),
          "unbounded repetition of a nullable element: the generator can "
          "loop without consuming input"));
    }
    scan_node(rule_name, rep->element, ctx, out);
    return;
  }
  if (const auto* nv = node->as<NumVal>()) {
    if (nv->is_range && nv->lo > nv->hi) {
      out.push_back(make_diag(
          Severity::kError, "GL009", rule_name, excerpt(node),
          "empty num-val range: lower bound " + std::to_string(nv->lo) +
              " exceeds upper bound " + std::to_string(nv->hi)));
    }
    return;
  }
  if (const auto* ref = node->as<RuleRef>()) {
    if (!ctx.grammar->contains(ref->name)) {
      out.push_back(make_diag(Severity::kError, "GL002", rule_name, ref->name,
                              "reference to undefined rule '" + ref->name +
                                  "'"));
    }
    return;
  }
  if (const auto* opt = node->as<Option>()) {
    scan_node(rule_name, opt->element, ctx, out);
    return;
  }
  if (const auto* cat = node->as<Concatenation>()) {
    for (const auto& p : cat->parts) scan_node(rule_name, p, ctx, out);
    return;
  }
  if (const auto* alt = node->as<Alternation>()) {
    const auto& alts = alt->alts;
    for_each_colliding_pair(
        alts, *ctx.facts,
        [&](std::size_t i, std::size_t j, PairKind kind,
            const std::bitset<256>& overlap) {
          switch (kind) {
            case PairKind::kSubsumed:
              out.push_back(make_diag(
                  Severity::kWarning, "GL004", rule_name, excerpt(alts[j]),
                  "alternative " + std::to_string(j + 1) +
                      " is unreachable: subsumed by alternative " +
                      std::to_string(i + 1) + " (" + excerpt(alts[i]) + ")"));
              break;
            case PairKind::kTerminalOverlap:
              out.push_back(make_diag(
                  Severity::kWarning, "GL006", rule_name,
                  excerpt(alts[i]) + " vs " + excerpt(alts[j]),
                  "terminal byte classes of alternatives " +
                      std::to_string(i + 1) + " and " + std::to_string(j + 1) +
                      " overlap on " + format_byte_class(overlap)));
              break;
            case PairKind::kFirstOverlap:
              out.push_back(make_diag(
                  Severity::kInfo, "GL005", rule_name,
                  excerpt(alts[i]) + " vs " + excerpt(alts[j]),
                  "FIRST sets of alternatives " + std::to_string(i + 1) +
                      " and " + std::to_string(j + 1) + " overlap on " +
                      format_byte_class(overlap) +
                      ": a parser must look past one byte to choose "
                      "(semantic-gap seed)"));
              break;
          }
        });
    for (const auto& a : alts) scan_node(rule_name, a, ctx, out);
    return;
  }
  // CharVal / ProseVal: nothing rule-local to check.
}

/// Shortest left-call cycle through `start`, or empty when none exists.
std::vector<std::string> find_left_cycle(
    const std::string& start,
    const std::map<std::string, std::vector<std::string>>& left_calls) {
  std::map<std::string, std::string> parent;
  std::deque<std::string> queue;
  auto it = left_calls.find(start);
  if (it == left_calls.end()) return {};
  for (const auto& next : it->second) {
    if (parent.emplace(next, start).second) queue.push_back(next);
  }
  while (!queue.empty()) {
    std::string cur = queue.front();
    queue.pop_front();
    if (cur == start) {
      std::vector<std::string> path{start};
      for (std::string n = parent.at(start); n != start; n = parent.at(n)) {
        path.push_back(n);
      }
      std::reverse(path.begin() + 1, path.end());
      path.push_back(start);
      return path;
    }
    auto cit = left_calls.find(cur);
    if (cit == left_calls.end()) continue;
    for (const auto& next : cit->second) {
      if (parent.emplace(next, cur).second) queue.push_back(next);
    }
  }
  return {};
}

/// Pre-order walk mirroring scan_node's traversal, collecting the overlap
/// pairs of every alternation (the non-diagnostic twin of the GL005/GL006
/// scan).
void collect_sites_node(const std::string& rule_name, const NodePtr& node,
                        const GrammarFacts& facts,
                        std::vector<RawGapSite>& out) {
  if (!node) return;
  if (const auto* rep = node->as<Repetition>()) {
    collect_sites_node(rule_name, rep->element, facts, out);
    return;
  }
  if (const auto* opt = node->as<Option>()) {
    collect_sites_node(rule_name, opt->element, facts, out);
    return;
  }
  if (const auto* cat = node->as<Concatenation>()) {
    for (const auto& p : cat->parts) {
      collect_sites_node(rule_name, p, facts, out);
    }
    return;
  }
  if (const auto* alt = node->as<Alternation>()) {
    for_each_colliding_pair(
        alt->alts, facts,
        [&](std::size_t i, std::size_t j, PairKind kind,
            const std::bitset<256>& overlap) {
          if (kind == PairKind::kSubsumed) return;  // GL004 owns these
          RawGapSite site;
          site.rule = rule_name;
          site.alt_a = i + 1;
          site.alt_b = j + 1;
          site.terminal = kind == PairKind::kTerminalOverlap;
          site.overlap = overlap;
          out.push_back(std::move(site));
        });
    for (const auto& a : alt->alts) {
      collect_sites_node(rule_name, a, facts, out);
    }
    return;
  }
  // CharVal / NumVal / RuleRef / ProseVal: no alternation pairs below.
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += " -> ";
    out += path[i];
  }
  return out;
}

}  // namespace

GrammarFacts compute_grammar_facts(const Grammar& grammar) {
  GrammarFacts facts;
  for (const auto& [name, rule] : grammar.rules()) {
    facts.nullable[name] = false;
    facts.first[name] = {};
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rule] : grammar.rules()) {
      if (facts.nullable[name]) continue;
      if (node_nullable(rule.definition, facts.nullable)) {
        facts.nullable[name] = true;
        changed = true;
      }
    }
  }

  changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rule] : grammar.rules()) {
      auto next = facts.first[name] |
                  node_first(rule.definition, facts.nullable, facts.first);
      if (next != facts.first[name]) {
        facts.first[name] = next;
        changed = true;
      }
    }
  }

  for (const auto& [name, rule] : grammar.rules()) {
    std::vector<std::string> calls;
    collect_left_calls(rule.definition, facts.nullable, calls);
    std::sort(calls.begin(), calls.end());
    calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
    facts.left_calls[name] = std::move(calls);
  }
  return facts;
}

std::vector<RawGapSite> collect_gap_sites(const Grammar& grammar,
                                          const GrammarFacts& facts) {
  std::vector<RawGapSite> out;
  for (const auto& [name, rule] : grammar.rules()) {
    collect_sites_node(name, rule.definition, facts, out);
  }
  return out;
}

std::string format_byte_class(const std::bitset<256>& bits) {
  auto render = [](unsigned b) {
    if (b >= 0x21 && b <= 0x7E) {
      return std::string("'") + static_cast<char>(b) + "'";
    }
    char buf[8];
    std::snprintf(buf, sizeof buf, "0x%02x", b);
    return std::string(buf);
  };
  constexpr std::size_t kMaxSegments = 8;
  std::string out;
  std::size_t segments = 0;
  std::size_t skipped = 0;
  for (std::size_t b = 0; b < 256;) {
    if (!bits.test(b)) {
      ++b;
      continue;
    }
    std::size_t end = b;
    while (end + 1 < 256 && bits.test(end + 1)) ++end;
    if (segments >= kMaxSegments) {
      skipped += end - b + 1;
    } else {
      if (!out.empty()) out += ' ';
      out += render(static_cast<unsigned>(b));
      if (end > b) out += "-" + render(static_cast<unsigned>(end));
      ++segments;
    }
    b = end + 1;
  }
  if (skipped > 0) out += " +" + std::to_string(skipped) + " more";
  return out.empty() ? std::string("(empty)") : out;
}

std::vector<Diagnostic> lint_grammar(const Grammar& grammar,
                                     const GrammarLintOptions& options) {
  const GrammarFacts facts = compute_grammar_facts(grammar);
  ScanContext ctx{&grammar, &facts};

  // Stable rule order for sharding: the grammar map is already sorted by
  // normalized name.
  std::vector<const std::pair<const std::string, abnf::Rule>*> entries;
  entries.reserve(grammar.size());
  for (const auto& e : grammar.rules()) entries.push_back(&e);

  std::size_t jobs = std::max<std::size_t>(1, options.jobs);
  jobs = std::min(jobs, std::max<std::size_t>(1, entries.size()));
  std::vector<std::vector<Diagnostic>> slots(entries.size());
  auto scan_range = [&](std::size_t worker) {
    for (std::size_t i = worker; i < entries.size(); i += jobs) {
      scan_node(entries[i]->first, entries[i]->second.definition, ctx,
                slots[i]);
    }
  };
  if (jobs == 1) {
    scan_range(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back(scan_range, w);
    }
    for (auto& t : workers) t.join();
  }

  std::vector<Diagnostic> diags;
  for (auto& slot : slots) {
    diags.insert(diags.end(), std::make_move_iterator(slot.begin()),
                 std::make_move_iterator(slot.end()));
  }

  // GL001: left recursion over the whole leftmost-call graph.
  for (const auto* entry : entries) {
    auto cycle = find_left_cycle(entry->first, facts.left_calls);
    if (!cycle.empty()) {
      diags.push_back(make_diag(
          Severity::kError, "GL001", entry->first, join_path(cycle),
          cycle.size() == 2 ? "direct left recursion"
                            : "indirect left recursion"));
    }
  }

  // GL007: unused / unreachable rules.
  std::set<std::string> roots;
  for (const auto& r : options.roots) {
    roots.insert(abnf::normalize_rule_name(r));
  }
  if (roots.empty()) {
    std::set<std::string> referenced;
    for (const auto* entry : entries) {
      std::vector<std::string> refs;
      Grammar::collect_refs(entry->second.definition, refs);
      referenced.insert(refs.begin(), refs.end());
    }
    for (const auto* entry : entries) {
      if (referenced.count(entry->first) == 0) {
        diags.push_back(make_diag(
            Severity::kInfo, "GL007", entry->first, "",
            "rule is never referenced by any other rule"));
      }
    }
  } else {
    std::set<std::string> reachable;
    std::deque<std::string> queue(roots.begin(), roots.end());
    while (!queue.empty()) {
      std::string cur = queue.front();
      queue.pop_front();
      if (!reachable.insert(cur).second) continue;
      const auto* rule = grammar.find(cur);
      if (rule == nullptr) continue;
      std::vector<std::string> refs;
      Grammar::collect_refs(rule->definition, refs);
      for (auto& r : refs) queue.push_back(std::move(r));
    }
    for (const auto* entry : entries) {
      if (reachable.count(entry->first) == 0) {
        diags.push_back(make_diag(
            Severity::kInfo, "GL007", entry->first, "",
            "rule is unreachable from the configured roots"));
      }
    }
  }

  sort_diagnostics(diags);
  return diags;
}

}  // namespace hdiff::analysis
