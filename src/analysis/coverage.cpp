#include "analysis/coverage.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>

namespace hdiff::analysis {
namespace {

/// Root proximity weight: depth 0 (the request line itself) scores
/// kDepthCap, anything at or beyond kDepthCap - 1 scores 1.  Semantic-gap
/// attacks concentrate near the message root, where every implementation
/// must commit to an interpretation early.
constexpr std::size_t kDepthCap = 16;

/// Local FNV-1a (analysis cannot use campaign::hex64 without inverting the
/// layer dependency; the constants are the standard 64-bit FNV pair).
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::size_t site_rank(const std::bitset<256>& overlap, std::size_t depth,
                      bool leftmost) {
  const std::size_t proximity =
      kDepthCap - std::min(depth, kDepthCap - 1);
  return overlap.count() * proximity * (leftmost ? 2 : 1);
}

}  // namespace

std::size_t CoveragePlan::id_of(std::string_view name) const {
  const auto it = std::lower_bound(
      productions.begin(), productions.end(), name,
      [](const CoverageProduction& p, std::string_view n) {
        return p.name < n;
      });
  if (it == productions.end() || it->name != name) return npos;
  return static_cast<std::size_t>(it - productions.begin());
}

std::string byte_class_hex(const std::bitset<256>& bits) {
  std::string out;
  out.reserve(64);
  for (std::size_t byte = 0; byte < 32; ++byte) {
    unsigned v = 0;
    for (std::size_t bit = 0; bit < 8; ++bit) {
      if (bits.test(byte * 8 + bit)) v |= 1U << bit;
    }
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", v);
    out += buf;
  }
  return out;
}

bool parse_byte_class_hex(std::string_view hex, std::bitset<256>* out) {
  if (hex.size() != 64) return false;
  out->reset();
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t byte = 0; byte < 32; ++byte) {
    const int hi = nibble(hex[byte * 2]);
    const int lo = nibble(hex[byte * 2 + 1]);
    if (hi < 0 || lo < 0) return false;
    const unsigned v = static_cast<unsigned>(hi) << 4 | static_cast<unsigned>(lo);
    for (std::size_t bit = 0; bit < 8; ++bit) {
      if (v & (1U << bit)) out->set(byte * 8 + bit);
    }
  }
  return true;
}

std::string witness_bytes(const std::bitset<256>& bits,
                          std::size_t max_bytes) {
  std::string out;
  for (std::size_t b = 0; b < 256 && out.size() < max_bytes; ++b) {
    if (bits.test(b)) out.push_back(static_cast<char>(b));
  }
  return out;
}

std::string coverage_plan_sig(const CoveragePlan& plan) {
  std::string acc = "cov-plan-v1";
  for (const auto& p : plan.productions) {
    acc += "|p:" + p.name + ":" + std::to_string(p.depth) +
           (p.leftmost ? ":l" : ":r");
  }
  for (const auto& s : plan.sites) {
    acc += "|s:" + std::to_string(s.production) + ":" +
           std::to_string(s.alt_a) + ":" + std::to_string(s.alt_b) + ":" +
           s.kind + ":" + byte_class_hex(s.overlap);
    for (std::size_t a : s.related) acc += "," + std::to_string(a);
  }
  return hex16(fnv1a64(acc));
}

CoveragePlan build_coverage_plan(const abnf::Grammar& grammar,
                                 const std::vector<std::string>& roots_in) {
  CoveragePlan plan;
  const GrammarFacts facts = compute_grammar_facts(grammar);

  std::set<std::string> roots;
  for (const auto& r : roots_in) {
    std::string n = abnf::normalize_rule_name(r);
    if (grammar.contains(n)) roots.insert(std::move(n));
  }
  if (roots.empty()) {
    for (const auto& [name, rule] : grammar.rules()) roots.insert(name);
  }

  // BFS depth over general rule references: the reachable cone IS the
  // production set (rules outside it are GL007 territory, not coverage).
  // Both edge directions are recorded for the per-site attribution cones.
  std::map<std::string, std::size_t> depth;
  std::map<std::string, std::set<std::string>> parents;
  std::map<std::string, std::set<std::string>> children;
  std::deque<std::string> queue;
  for (const auto& r : roots) {
    depth.emplace(r, 0);
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const std::string cur = std::move(queue.front());
    queue.pop_front();
    const abnf::Rule* rule = grammar.find(cur);
    if (rule == nullptr) continue;
    std::vector<std::string> refs;
    abnf::Grammar::collect_refs(rule->definition, refs);
    const std::size_t next_depth = depth.at(cur) + 1;
    for (auto& ref : refs) {
      if (!grammar.contains(ref)) continue;
      parents[ref].insert(cur);
      children[cur].insert(ref);
      if (depth.emplace(ref, next_depth).second) queue.push_back(ref);
    }
  }

  // Leftmost closure: rules a parser can be deciding while still at the
  // first byte of a root (through nullable prefixes — facts.left_calls).
  std::set<std::string> leftmost(roots.begin(), roots.end());
  std::deque<std::string> lqueue(roots.begin(), roots.end());
  while (!lqueue.empty()) {
    const std::string cur = std::move(lqueue.front());
    lqueue.pop_front();
    const auto it = facts.left_calls.find(cur);
    if (it == facts.left_calls.end()) continue;
    for (const auto& next : it->second) {
      if (leftmost.insert(next).second) lqueue.push_back(next);
    }
  }

  // Productions: the reachable cone, name-sorted (std::map order), so ids
  // are stable for any root order.
  plan.productions.reserve(depth.size());
  for (const auto& [name, d] : depth) {
    plan.productions.push_back({name, d, leftmost.count(name) > 0});
  }

  // Attribution cone of a rule: every cone production whose text flows
  // through it — its ancestors plus its own subtree (itself included).
  auto related_of = [&](const std::string& rule) {
    std::set<std::string> seen{rule};
    auto closure = [&](const std::map<std::string, std::set<std::string>>&
                           edges) {
      std::deque<std::string> work{rule};
      while (!work.empty()) {
        const std::string cur = std::move(work.front());
        work.pop_front();
        const auto it = edges.find(cur);
        if (it == edges.end()) continue;
        for (const auto& next : it->second) {
          if (seen.insert(next).second) work.push_back(next);
        }
      }
    };
    closure(parents);
    closure(children);
    std::vector<std::size_t> ids;
    for (const auto& name : seen) {
      const std::size_t id = plan.id_of(name);
      if (id != CoveragePlan::npos) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  // Gap sites: the exact GL005/GL006 pair logic (single source of truth in
  // grammar_lint), restricted to the cone, then ranked.
  for (RawGapSite& raw : collect_gap_sites(grammar, facts)) {
    const std::size_t prod = plan.id_of(raw.rule);
    if (prod == CoveragePlan::npos) continue;
    const CoverageProduction& owner = plan.productions[prod];
    GapSite site;
    site.production = prod;
    site.rule = raw.rule;
    site.alt_a = raw.alt_a;
    site.alt_b = raw.alt_b;
    site.kind = raw.terminal ? 'b' : 'f';
    site.overlap = raw.overlap;
    site.width = raw.overlap.count();
    site.rank = site_rank(raw.overlap, owner.depth, owner.leftmost);
    site.witness = witness_bytes(raw.overlap);
    site.related = related_of(raw.rule);
    plan.sites.push_back(std::move(site));
  }
  std::stable_sort(plan.sites.begin(), plan.sites.end(),
                   [](const GapSite& a, const GapSite& b) {
                     if (a.rank != b.rank) return a.rank > b.rank;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.alt_a != b.alt_a) return a.alt_a < b.alt_a;
                     return a.alt_b < b.alt_b;
                   });
  for (std::size_t i = 0; i < plan.sites.size(); ++i) plan.sites[i].id = i;

  plan.sig = coverage_plan_sig(plan);
  return plan;
}

}  // namespace hdiff::analysis
