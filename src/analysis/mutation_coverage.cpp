#include "analysis/mutation_coverage.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "abnf/generator.h"

namespace hdiff::analysis {
namespace {

std::string target_key(const core::AbnfTarget& t) {
  return t.rule + "@" + std::string(core::to_string(t.position));
}

Diagnostic make_diag(Severity sev, std::string code, std::string rule,
                     std::string span, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.analyzer = "mutation";
  d.rule = std::move(rule);
  d.span = std::move(span);
  d.message = std::move(message);
  return d;
}

struct TargetTally {
  std::map<std::string, std::size_t> sites_per_kind;
  std::size_t seeds = 0;
  std::size_t mutants = 0;
  bool derivable = false;
};

TargetTally measure_target(const abnf::Generator& gen,
                           const core::AbnfTarget& target,
                           const MutationCoverageOptions& options) {
  TargetTally tally;
  const auto values = gen.enumerate(target.rule, options.values_per_target);
  tally.derivable = !values.empty();
  for (const auto& value : values) {
    http::RequestSpec seed = core::embed_value(target.position, value);
    ++tally.seeds;
    for (const auto& mutant : core::mutate(seed, options.mutation)) {
      ++tally.mutants;
      for (const auto& applied : mutant.applied) {
        ++tally.sites_per_kind[std::string(core::to_string(applied.kind))];
      }
    }
  }
  return tally;
}

}  // namespace

MutationCoverageResult analyze_mutation_coverage(
    const abnf::Grammar& grammar, const MutationCoverageOptions& options) {
  MutationCoverageResult result;
  const std::vector<core::AbnfTarget> targets =
      options.targets.empty() ? core::default_abnf_targets()
                              : options.targets;

  for (const auto& kind : core::all_mutation_kinds()) {
    result.stats.sites_per_kind[std::string(core::to_string(kind))] = 0;
  }

  // Per-target measurement is embarrassingly parallel; results merge in
  // target order so tallies are schedule-independent.  Each worker gets its
  // own Generator: enumerate() is const but memoizes minimal derivations.
  std::size_t jobs = std::max<std::size_t>(1, options.jobs);
  jobs = std::min(jobs, std::max<std::size_t>(1, targets.size()));
  std::vector<TargetTally> tallies(targets.size());
  auto measure_range = [&](std::size_t worker) {
    abnf::Generator gen(grammar);
    abnf::load_default_http_predefined(gen);
    for (std::size_t i = worker; i < targets.size(); i += jobs) {
      tallies[i] = measure_target(gen, targets[i], options);
    }
  };
  if (jobs == 1) {
    measure_range(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back(measure_range, w);
    }
    for (auto& t : workers) t.join();
  }

  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& target = targets[i];
    const auto& tally = tallies[i];
    const std::string key = target_key(target);
    result.stats.seeds += tally.seeds;
    result.stats.mutants += tally.mutants;
    result.stats.mutants_per_target[key] = tally.mutants;
    for (const auto& [kind, count] : tally.sites_per_kind) {
      result.stats.sites_per_kind[kind] += count;
    }

    if (!tally.derivable) {
      result.diagnostics.push_back(make_diag(
          Severity::kInfo, "MC003", target.rule,
          std::string(core::to_string(target.position)),
          "target rule is not derivable from the grammar: no seeds, "
          "coverage is vacuous"));
    } else if (tally.mutants == 0) {
      result.diagnostics.push_back(make_diag(
          Severity::kWarning, "MC002", target.rule,
          std::string(core::to_string(target.position)),
          "no mutation operator perturbs any seed from this target: its "
          "requests reach the chain unmutated"));
    }
  }

  for (const auto& [kind, count] : result.stats.sites_per_kind) {
    if (count == 0) {
      result.diagnostics.push_back(make_diag(
          Severity::kWarning, "MC001", kind, "",
          "mutation operator has zero applicable sites across the corpus "
          "(declared but never emitted)"));
    }
  }

  sort_diagnostics(result.diagnostics);
  return result;
}

}  // namespace hdiff::analysis
