// RuleBaseLint: static analysis over a `core::CustomRuleEngine`.
//
// SR-derived rules are opaque predicates (`std::function` over HMetrics
// projections), so the linter characterizes them behaviourally: every rule
// is evaluated against a fixed battery of synthetic chain scenarios — the
// canonical HRS / HoT / CPDoS shapes plus clean and near-miss controls —
// and its *fire signature* (which probes it matches) becomes a comparable
// fingerprint (DESIGN.md §9):
//
//   RB001 warning  duplicate rules: identical signature, same attack class,
//                  different names (one is redundant)
//   RB002 warning  shadowed rule: the same name registered more than once
//   RB003 error    contradictory rules: identical signature but conflicting
//                  attack-class verdicts
//   RB004 warning  rule never fires on any battery probe (dead rule or a
//                  predicate the corpus can never exercise)
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/rules.h"

namespace hdiff::analysis {

/// Names of the synthetic pair scenarios, in battery order (exposed so the
/// tests and DESIGN.md stay honest about what "never fires" means).
std::vector<std::string> pair_probe_names();

/// Behavioural fingerprint of one rule.
struct RuleSignature {
  std::string name;
  core::AttackClass attack = core::AttackClass::kGeneric;
  std::vector<bool> fires;  ///< one slot per battery probe
};

/// Fingerprints for every registered pair rule, in registration order.
std::vector<RuleSignature> pair_rule_signatures(
    const core::CustomRuleEngine& engine);

std::vector<Diagnostic> lint_rulebase(const core::CustomRuleEngine& engine);

}  // namespace hdiff::analysis
