// Shared diagnostic model for the static spec-lint pass (DESIGN.md §9).
//
// Every analyzer (GrammarLint, RuleBaseLint, MutationCoverage) reports
// through one value type so the CLI, the JSON report, and the tests speak a
// single vocabulary.  Codes are *stable identifiers* (GLnnn / RBnnn / MCnnn):
// they are part of the tool's contract — waivers key on them, and tests
// assert them — so a code is never renumbered or reused.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::analysis {

enum class Severity {
  kInfo,     ///< expected on real-world grammars (e.g. ambiguity seeds)
  kWarning,  ///< degrades generator/detector quality; gate with waiver
  kError,    ///< the artifact is broken (left recursion, undefined ref, ...)
};

std::string_view to_string(Severity s) noexcept;

/// One finding.  `rule` names the subject (grammar rule, SR rule name, or
/// mutation operator); `span` locates the finding inside the subject (an
/// alternative index, a rendered ABNF excerpt, a probe name).
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;      ///< stable, e.g. "GL001"
  std::string analyzer;  ///< "grammar" / "rulebase" / "mutation"
  std::string rule;
  std::string span;
  std::string message;
  bool waived = false;
  std::string waiver_reason;
};

/// A checked-in exception: diagnostics matching (code, rule) are kept in the
/// report but excluded from the severity gate.  `rule == "*"` matches any
/// subject with that code.
struct Waiver {
  std::string code;
  std::string rule;
  std::string reason;
};

/// Total order over every field, so reports are byte-identical regardless
/// of analyzer scheduling (`--jobs` sharding included).
bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) noexcept;
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Mark matching diagnostics as waived; returns how many matched.
std::size_t apply_waivers(std::vector<Diagnostic>& diags,
                          const std::vector<Waiver>& waivers);

/// Severity tally, split by waiver status (waived findings stay visible but
/// never gate).
struct DiagnosticCounts {
  std::size_t errors = 0;    ///< unwaived errors
  std::size_t warnings = 0;  ///< unwaived warnings
  std::size_t infos = 0;     ///< unwaived infos
  std::size_t waived = 0;    ///< waived findings of any severity
  std::size_t total() const noexcept {
    return errors + warnings + infos + waived;
  }
};

DiagnosticCounts count_diagnostics(const std::vector<Diagnostic>& diags);

/// One-line rendering: "error GL001 [grammar] rule: message (span)".
std::string to_string(const Diagnostic& d);

}  // namespace hdiff::analysis
