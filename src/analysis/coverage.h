// Grammar-coverage map + semantic-gap site ranking (DESIGN.md §14).
//
// `build_coverage_plan` runs a static pass over the ABNF DAG and produces
// the artifact that closes the static-analysis loop (ROADMAP
// "Grammar-coverage-guided generation"):
//
//   * every production reachable from the request roots gets a stable id
//     (index into `productions`, sorted by normalized rule name), its BFS
//     depth from the roots, and whether it sits on a leftmost path (a
//     parser decides these rules from the first bytes it reads);
//   * every GL005/GL006 overlap pair becomes a ranked `GapSite` with its
//     concrete overlap byte class and witness bytes.  Rank = overlap width
//     x root proximity, doubled on leftmost paths — wide ambiguity close to
//     the request line is exactly where semantic-gap attacks live.
//
// The plan is a pure function of the grammar and the roots (no wall clock,
// no RNG, stable sorts everywhere), so the campaign can serialize it into
// its checkpoint and every worker / resume recomputes identical ids — the
// property the scheduler's coverage weighting and the `hdiff lint --json`
// `gap_sites` block both rely on.
#pragma once

#include <bitset>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abnf/ast.h"
#include "analysis/grammar_lint.h"

namespace hdiff::analysis {

/// One grammar production in the coverage map.  Its id is its index in
/// `CoveragePlan::productions`.
struct CoverageProduction {
  std::string name;        ///< normalized rule name
  std::size_t depth = 0;   ///< BFS depth from the request roots
  bool leftmost = false;   ///< reachable through the leftmost-call closure
};

/// One ranked semantic-gap site: a pair of alternatives whose byte classes
/// overlap (GL005 FIRST overlap or GL006 terminal byte-class overlap).
/// Its id is its index in `CoveragePlan::sites` (rank order).
struct GapSite {
  std::size_t id = 0;          ///< index in CoveragePlan::sites
  std::size_t production = 0;  ///< owning production id
  std::string rule;            ///< owning rule name (== productions[production].name)
  std::size_t alt_a = 0;       ///< 1-based earlier alternative
  std::size_t alt_b = 0;       ///< 1-based later alternative
  char kind = 'f';             ///< 'f' = FIRST overlap, 'b' = terminal byte class
  std::bitset<256> overlap;    ///< the concrete overlap byte class
  std::size_t width = 0;       ///< overlap.count()
  std::size_t rank = 0;        ///< width x root proximity (x2 on leftmost paths)
  std::string witness;         ///< up to 4 lowest overlap bytes, raw
  /// The attribution cone: production ids whose text flows through this
  /// site — ancestors (rules from which the owner is reachable) plus
  /// descendants (the owner's own subtree), sorted, `production` included.
  /// A mutation touching any of these perturbs bytes the site's alternation
  /// must discriminate (a Transfer-Encoding value mutation reaches a
  /// transfer-coding site; an HTTP-version mutation reaches a start-line
  /// site through the request-line alternative).
  std::vector<std::size_t> related;
};

/// The full static artifact; serialized into the campaign checkpoint.
struct CoveragePlan {
  std::vector<CoverageProduction> productions;  ///< name-sorted; id = index
  std::vector<GapSite> sites;                   ///< rank-sorted; id = index
  std::string sig;  ///< FNV-1a of the canonical serialization
  /// Production ids the bootstrap generation cone exercises (folded into
  /// the covered set when the plan is adopted, so round-0 work is never
  /// double-counted as scheduler-driven exploration).
  std::set<std::size_t> bootstrap_covered;

  bool enabled() const { return !productions.empty(); }
  /// Production id for a normalized rule name; npos when outside the cone.
  std::size_t id_of(std::string_view name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Build the plan for `grammar` rooted at `roots` (rule names, normalized
/// internally; empty or all-undefined roots mean "every rule is a root").
CoveragePlan build_coverage_plan(const abnf::Grammar& grammar,
                                 const std::vector<std::string>& roots);

/// Canonical signature of a plan's productions + sites (FNV-1a 64, 16 hex
/// digits).  `build_coverage_plan` fills `sig` with this.
std::string coverage_plan_sig(const CoveragePlan& plan);

/// 256-bit byte class as 64 lowercase hex chars (bit 8i+j of byte i), and
/// back.  The checkpoint's covsite line format.
std::string byte_class_hex(const std::bitset<256>& bits);
bool parse_byte_class_hex(std::string_view hex, std::bitset<256>* out);

/// Up to `max_bytes` lowest set bytes of a class, raw (witness bytes).
std::string witness_bytes(const std::bitset<256>& bits,
                          std::size_t max_bytes = 4);

}  // namespace hdiff::analysis
