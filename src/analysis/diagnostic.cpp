#include "analysis/diagnostic.h"

#include <algorithm>
#include <tuple>

namespace hdiff::analysis {

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) noexcept {
  return std::tie(a.code, a.rule, a.span, a.message) <
         std::tie(b.code, b.rule, b.span, b.message);
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(), diagnostic_less);
  // Scheduling can legitimately double-report a finding when two shards see
  // the same cross-rule fact; a deterministic report keeps exactly one.
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return !diagnostic_less(a, b) &&
                                   !diagnostic_less(b, a);
                          }),
              diags.end());
}

std::size_t apply_waivers(std::vector<Diagnostic>& diags,
                          const std::vector<Waiver>& waivers) {
  std::size_t matched = 0;
  for (auto& d : diags) {
    if (d.waived) {
      ++matched;
      continue;
    }
    for (const auto& w : waivers) {
      if (w.code != d.code) continue;
      if (w.rule != "*" && w.rule != d.rule) continue;
      d.waived = true;
      d.waiver_reason = w.reason;
      ++matched;
      break;
    }
  }
  return matched;
}

DiagnosticCounts count_diagnostics(const std::vector<Diagnostic>& diags) {
  DiagnosticCounts c;
  for (const auto& d : diags) {
    if (d.waived) {
      ++c.waived;
      continue;
    }
    switch (d.severity) {
      case Severity::kError:
        ++c.errors;
        break;
      case Severity::kWarning:
        ++c.warnings;
        break;
      case Severity::kInfo:
        ++c.infos;
        break;
    }
  }
  return c;
}

std::string to_string(const Diagnostic& d) {
  std::string out;
  out.reserve(64 + d.message.size());
  out += to_string(d.severity);
  out += ' ';
  out += d.code;
  out += " [";
  out += d.analyzer;
  out += "] ";
  out += d.rule;
  out += ": ";
  out += d.message;
  if (!d.span.empty()) {
    out += " (";
    out += d.span;
    out += ')';
  }
  if (d.waived) {
    out += " [waived: ";
    out += d.waiver_reason;
    out += ']';
  }
  return out;
}

}  // namespace hdiff::analysis
