// GrammarLint: static analysis over `abnf::Grammar` DAGs.
//
// Computes the classic grammar facts — nullability, FIRST sets (as byte
// classes), and leftmost-call graphs — by fixed-point iteration, then scans
// every rule for the defect classes that weaken the ABNF generator or signal
// specification ambiguity (DESIGN.md §9):
//
//   GL001 error    direct or indirect left recursion
//   GL002 error    reference to an undefined rule
//   GL003 warning  unbounded repetition of a nullable element
//                  (infinite-generation / infinite-loop risk)
//   GL004 warning  unreachable alternation branch (duplicate of an earlier
//                  alternative, including case-insensitive CharVal equality)
//   GL005 info     FIRST-set overlap between alternatives — the paper's
//                  semantic-gap seed; expected in real HTTP grammar, hence
//                  info severity
//   GL006 warning  char-val/num-val byte-class overlap between
//                  single-terminal alternatives (one branch shadows part of
//                  another's range)
//   GL007 info     rule defined but never referenced (and not a root)
//   GL008 error    repetition with min > max
//   GL009 error    num-val range with lo > hi
#pragma once

#include <bitset>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "abnf/ast.h"
#include "analysis/diagnostic.h"

namespace hdiff::analysis {

struct GrammarLintOptions {
  /// Rules treated as entry points: they are exempt from GL007 and seed the
  /// reachability walk.  Empty means "every rule is a root" (GL007 then
  /// reports only rules with zero inbound references).
  std::vector<std::string> roots;
  /// Worker threads for the per-rule scans.  Facts (nullable/FIRST/left
  /// calls) are always computed single-threaded: the fixed points are cheap
  /// and inherently sequential.
  std::size_t jobs = 1;
};

/// Grammar-wide facts, exposed for tests and for MutationCoverage.
struct GrammarFacts {
  std::map<std::string, bool> nullable;             // key: normalized name
  std::map<std::string, std::bitset<256>> first;    // FIRST as byte class
  std::map<std::string, std::vector<std::string>> left_calls;
};

/// Compute nullable / FIRST / leftmost-call facts by fixed point.
GrammarFacts compute_grammar_facts(const abnf::Grammar& grammar);

/// One raw overlap pair as found by the GL005/GL006 scan: alternatives
/// `alt_a` < `alt_b` (1-based) of `rule` whose byte classes intersect.
/// `terminal` mirrors the diagnostic split — true for single-terminal pairs
/// (GL006), false for FIRST-set overlaps (GL005).  Exposed so
/// analysis::build_coverage_plan ranks the same sites the diagnostics name.
struct RawGapSite {
  std::string rule;
  std::size_t alt_a = 0;
  std::size_t alt_b = 0;
  bool terminal = false;
  std::bitset<256> overlap;
};

/// Every gap site in the grammar, in deterministic scan order (rules by
/// normalized name, alternations in pre-order, pairs by (later, earlier)).
std::vector<RawGapSite> collect_gap_sites(const abnf::Grammar& grammar,
                                          const GrammarFacts& facts);

/// Human rendering of a byte class: printable bytes quoted, others hex,
/// consecutive runs collapsed to ranges, capped at 8 segments.  Used in the
/// GL005/GL006 messages and the coverage report.
std::string format_byte_class(const std::bitset<256>& bits);

/// Run every grammar check; diagnostics come back sorted and deduplicated
/// (byte-identical for any `jobs` value).
std::vector<Diagnostic> lint_grammar(const abnf::Grammar& grammar,
                                     const GrammarLintOptions& options = {});

}  // namespace hdiff::analysis
