// Lint orchestrator: runs GrammarLint, RuleBaseLint, and MutationCoverage
// over one grammar + rule engine, applies waivers, and renders the combined
// report (JSON fragment, human table, exit code).  This is the engine behind
// `hdiff lint` and the "lint" block of the findings JSON (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abnf/ast.h"
#include "analysis/coverage.h"
#include "analysis/diagnostic.h"
#include "analysis/grammar_lint.h"
#include "analysis/mutation_coverage.h"
#include "analysis/rulebase_lint.h"
#include "core/rules.h"
#include "obs/obs.h"

namespace hdiff::analysis {

struct LintOptions {
  GrammarLintOptions grammar;
  MutationCoverageOptions mutation;
  std::vector<Waiver> waivers;
  /// Include the checked-in corpus waivers (default_corpus_waivers()).
  bool use_default_corpus_waivers = true;
  /// Run MutationCoverage (the one analyzer that derives seeds; tests on
  /// tiny fixture grammars can skip it).
  bool run_mutation_coverage = true;
  std::size_t jobs = 1;
  obs::Observability obs;  ///< optional metrics/trace sinks
};

/// Per-analyzer runtime, for the JSON report (never the text report — text
/// output must stay byte-identical across runs and `--jobs` values).
struct AnalyzerStats {
  std::string name;
  std::size_t diagnostics = 0;
  std::uint64_t micros = 0;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< sorted, waivers applied
  DiagnosticCounts counts;
  std::vector<AnalyzerStats> analyzers;
  MutationCoverageStats mutation_stats;
  /// Ranked semantic-gap sites (coverage plan over options.grammar.roots);
  /// the `gap_sites` block of `hdiff lint --json` and the exact artifact
  /// the campaign checkpoint serializes — same ids, same order.
  std::vector<GapSite> gap_sites;
};

/// The checked-in waivers that keep the shipped corpus green.  Every entry
/// documents a *known, accepted* finding; removing the underlying defect
/// means removing the waiver (tests pin this list against the corpus).
std::vector<Waiver> default_corpus_waivers();

LintResult run_lint(const abnf::Grammar& grammar,
                    const core::CustomRuleEngine& engine,
                    const LintOptions& options = {});

/// JSON object fragment for the "lint" report block (includes timings).
std::string lint_json(const LintResult& result);

/// Human-readable report: diagnostics table + summary line.  Deliberately
/// timing-free so output is byte-identical across `--jobs` values.
std::string lint_text(const LintResult& result);

/// 0 = clean (waived/info only), 3 = unwaived warnings, 4 = unwaived errors.
int lint_exit_code(const LintResult& result) noexcept;

}  // namespace hdiff::analysis
