// Wire-precise request construction.
//
// Test-case generation needs byte-level control: whitespace before a colon,
// a bare-LF terminator on one specific line, a duplicated header, a mangled
// version token.  `RequestSpec` therefore stores the separator and terminator
// bytes for every element explicitly instead of assuming canonical syntax,
// and `to_wire()` is a pure concatenation with no normalization whatsoever.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::http {

/// One header line, fully spelled out.  The wire form is
/// `name + separator + value + terminator`.
struct HeaderSpec {
  std::string name;
  std::string value;
  std::string separator = ": ";    ///< bytes between name and value
  std::string terminator = "\r\n";

  friend bool operator==(const HeaderSpec&, const HeaderSpec&) = default;
};

/// A complete request in buildable form.
struct RequestSpec {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";  ///< empty string => 0.9-style line
  std::string sep1 = " ";            ///< between method and target
  std::string sep2 = " ";            ///< between target and version
  std::string line_terminator = "\r\n";
  std::string headers_terminator = "\r\n";  ///< the blank line
  std::vector<HeaderSpec> headers;
  std::string body;

  /// Append a header with canonical separators.
  RequestSpec& add(std::string_view name, std::string_view value);

  /// Append a fully-specified header.
  RequestSpec& add(HeaderSpec h);

  /// Replace the first header with this (case-insensitive) name, or add it.
  RequestSpec& set(std::string_view name, std::string_view value);

  /// Remove every header with this (case-insensitive) name.
  RequestSpec& remove(std::string_view name);

  /// First value for a (case-insensitive) header name, if present.
  std::optional<std::string> get(std::string_view name) const;

  /// Serialize to raw bytes, exactly as specified.
  std::string to_wire() const;

  friend bool operator==(const RequestSpec&, const RequestSpec&) = default;
};

/// Convenience: a minimal valid GET request for `host`.
RequestSpec make_get(std::string_view host, std::string_view target = "/");

/// Convenience: a POST with Content-Length framing.
RequestSpec make_post(std::string_view host, std::string_view target,
                      std::string_view body);

/// Convenience: a POST with chunked framing carrying `body` in one chunk.
RequestSpec make_chunked_post(std::string_view host, std::string_view target,
                              std::string_view body);

}  // namespace hdiff::http
