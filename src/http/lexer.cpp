#include "http/lexer.h"

#include <cstddef>

#include "http/header_util.h"

namespace hdiff::http {

namespace {

/// One physical line plus how it was terminated.
struct Line {
  std::string text;        // line content without terminator
  bool bare_lf = false;    // terminated by LF without preceding CR
  bool stray_cr = false;   // CR appearing inside the line (not part of CRLF)
  bool terminated = true;  // false if input ended mid-line
  std::size_t end_offset = 0;  // offset one past the terminator in the input
};

/// Extract the next line starting at `pos`.  A line ends at the first LF;
/// a CR immediately before that LF is consumed as part of the terminator.
Line next_line(std::string_view raw, std::size_t pos) {
  Line line;
  std::size_t i = pos;
  while (i < raw.size() && raw[i] != '\n') ++i;
  if (i >= raw.size()) {
    line.text.assign(raw.substr(pos));
    line.terminated = false;
    line.end_offset = raw.size();
  } else {
    std::size_t text_end = i;
    if (text_end > pos && raw[text_end - 1] == '\r') {
      --text_end;
    } else {
      line.bare_lf = true;
    }
    line.text.assign(raw.substr(pos, text_end - pos));
    line.end_offset = i + 1;
  }
  for (char c : line.text) {
    if (c == '\r') {
      line.stray_cr = true;
      break;
    }
  }
  return line;
}

void scan_byte_anomalies(std::string_view text, AnomalySet& set) {
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u == 0) add_anomaly(set, Anomaly::kNulByte);
    if (u >= 0x80) add_anomaly(set, Anomaly::kHighBitChar);
  }
}

/// Split the request line on runs of SP/HTAB.  RFC 7230 mandates exactly one
/// SP between the three components; anything else is flagged.
void parse_request_line(const Line& line, RequestLine& out) {
  out.raw = line.text;
  if (line.bare_lf) add_anomaly(out.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(out.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, out.anomalies);

  // Tokenize on runs of SP/HTAB.  The strict grammar permits exactly one SP
  // between components, so HTAB separators, consecutive separators, and
  // leading/trailing separators are all flagged as kExtraRequestLineWs.
  const std::string& s = line.text;
  std::vector<std::string> parts;
  bool saw_extra_ws = false;
  auto is_sep = [](char c) { return c == ' ' || c == '\t'; };
  std::size_t i = 0;
  while (i < s.size()) {
    if (is_sep(s[i])) {
      std::size_t run = 0;
      bool tab = false;
      while (i < s.size() && is_sep(s[i])) {
        tab = tab || s[i] == '\t';
        ++run;
        ++i;
      }
      if (tab || run > 1 || parts.empty() || i >= s.size()) saw_extra_ws = true;
      continue;
    }
    std::size_t start = i;
    while (i < s.size() && !is_sep(s[i])) ++i;
    parts.emplace_back(s.substr(start, i - start));
  }
  if (saw_extra_ws) add_anomaly(out.anomalies, Anomaly::kExtraRequestLineWs);

  if (parts.size() == 3) {
    out.method_token = parts[0];
    out.target = parts[1];
    out.version_token = parts[2];
  } else if (parts.size() == 2) {
    // HTTP/0.9 simple-request form: METHOD SP target
    out.method_token = parts[0];
    out.target = parts[1];
    add_anomaly(out.anomalies, Anomaly::kNoVersion);
  } else if (parts.size() > 3) {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    out.method_token = parts.front();
    out.version_token = parts.back();
    std::string target;
    for (std::size_t p = 1; p + 1 < parts.size(); ++p) {
      if (!target.empty()) target += ' ';
      target += parts[p];
    }
    out.target = target;
  } else {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    if (!parts.empty()) out.method_token = parts[0];
  }

  if (!out.version_token.empty() && !out.strict_version()) {
    add_anomaly(out.anomalies, Anomaly::kMalformedVersion);
  }
}

RawHeader parse_header_line(const Line& line) {
  RawHeader h;
  h.raw_line = line.text;
  if (line.bare_lf) add_anomaly(h.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(h.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, h.anomalies);

  std::size_t colon = line.text.find(':');
  if (colon == std::string::npos) {
    add_anomaly(h.anomalies, Anomaly::kMissingColon);
    h.name = line.text;
    return h;
  }
  h.name = line.text.substr(0, colon);
  std::string_view value{line.text};
  value.remove_prefix(colon + 1);
  h.value.assign(trim_ows(value));

  if (h.name.empty()) {
    add_anomaly(h.anomalies, Anomaly::kEmptyName);
  } else {
    // Whitespace directly before the colon is the classic smuggling lever
    // ("Content-Length : 10"); other embedded whitespace is tracked apart.
    if (is_ows(h.name.back()) || h.name.back() == '\v' || h.name.back() == '\f') {
      add_anomaly(h.anomalies, Anomaly::kWsBeforeColon);
    }
    std::string_view core = trim_lenient_ws(h.name);
    for (char c : core) {
      if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
        add_anomaly(h.anomalies, Anomaly::kWsInFieldName);
        break;
      }
    }
    if (core.empty()) {
      add_anomaly(h.anomalies, Anomaly::kEmptyName);
    } else if (!is_token(core)) {
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    } else if (core.data() != h.name.data()) {
      // Leading control bytes (VT/FF/CR — SP/HTAB-led lines never reach
      // here) around an otherwise valid token: the name is not a token on
      // the wire, even though lenient recognizers will strip and match it.
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    }
    // Leading whitespace on the name (e.g. " Host: ...") means the line
    // begins with whitespace; when it is the *first* header line this is the
    // kLeadingHeaderWs case, otherwise it lexes as an obs-fold candidate and
    // is handled by the caller before we get here.
  }
  for (char c : h.value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') {
      add_anomaly(h.anomalies, Anomaly::kCtlInValue);
      break;
    }
  }
  return h;
}

}  // namespace

RawRequest lex_request(std::string_view raw) {
  RawRequest req;
  std::size_t pos = 0;

  // Skip blank lines before the request line (RFC 7230 §3.5).
  Line line = next_line(raw, pos);
  while (line.terminated && line.text.empty() && line.end_offset < raw.size()) {
    pos = line.end_offset;
    line = next_line(raw, pos);
  }

  parse_request_line(line, req.line);
  req.anomalies |= req.line.anomalies;
  if (!line.terminated) {
    add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
    return req;
  }
  pos = line.end_offset;

  bool first_header = true;
  while (true) {
    if (pos >= raw.size()) {
      add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
      return req;
    }
    line = next_line(raw, pos);
    pos = line.end_offset;
    if (line.text.empty()) {
      if (!line.terminated) {
        add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
        return req;
      }
      break;  // end of header block
    }
    if (!line.terminated) {
      add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
      // Still record the partial line so models can inspect it.
    }

    const bool starts_with_ws = line.text[0] == ' ' || line.text[0] == '\t';
    if (starts_with_ws && !first_header && !req.headers.empty()) {
      // Obsolete line folding: the line continues the previous field value.
      RawHeader& prev = req.headers.back();
      add_anomaly(prev.anomalies, Anomaly::kObsFold);
      add_anomaly(req.anomalies, Anomaly::kObsFold);
      std::string_view cont = trim_ows(line.text);
      if (!prev.value.empty() && !cont.empty()) prev.value += ' ';
      prev.value.append(cont);
      prev.raw_line += "\\n" + line.text;
      scan_byte_anomalies(line.text, req.anomalies);
      if (!line.terminated) return req;
      continue;
    }

    RawHeader h = parse_header_line(line);
    if (starts_with_ws && first_header) {
      add_anomaly(h.anomalies, Anomaly::kLeadingHeaderWs);
    }
    req.anomalies |= h.anomalies;
    req.headers.push_back(std::move(h));
    first_header = false;
    if (!line.terminated) return req;
  }

  req.after_headers.assign(raw.substr(pos));
  return req;
}

}  // namespace hdiff::http
