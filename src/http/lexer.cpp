#include "http/lexer.h"

#include "http/view.h"

namespace hdiff::http {

// The owned lexer is a materializing wrapper over the zero-copy view parser
// (view.cpp holds the single tokenizer implementation); the historical
// owned lexer survives verbatim in http::reference as the parity oracle.
// The thread_local view keeps its vector capacity across calls, so repeat
// lexing only pays for the owned-copy allocations materialize() must make.
RawRequest lex_request(std::string_view raw) {
  thread_local RequestView view;
  parse_request_view(raw, view);
  RawRequest out = view.materialize();
  view.clear();  // do not keep borrowing `raw` past this call
  return out;
}

}  // namespace hdiff::http
