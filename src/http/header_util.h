// Header-field utilities shared by every HTTP parser model in HDiff.
//
// HTTP header names are case-insensitive tokens (RFC 7230 §3.2); values may
// carry optional whitespace (OWS) and comma-separated list members.  The
// helpers here are deliberately strict-by-default: the per-product behaviour
// models in src/impls opt in to laxness through their ParsePolicy instead of
// through permissive utilities.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::http {

/// ASCII-only tolower; HTTP is an ASCII protocol so locale tables are wrong.
char ascii_lower(char c) noexcept;

/// Lower-case an ASCII string (for case-insensitive map keys etc.).
std::string to_lower(std::string_view s);

/// Case-insensitive equality of two ASCII strings.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// True if `c` is OWS per RFC 7230: SP or HTAB.
bool is_ows(char c) noexcept;

/// True if `c` is a `tchar` (token character, RFC 7230 §3.2.6).
bool is_tchar(char c) noexcept;

/// True if every character of `s` is a tchar and `s` is non-empty.
bool is_token(std::string_view s) noexcept;

/// True if `c` may appear in a field value (VCHAR / obs-text / SP / HTAB).
bool is_field_vchar(char c) noexcept;

/// Strip leading and trailing OWS (SP/HTAB only — not \r, \n, or \v).
std::string_view trim_ows(std::string_view s) noexcept;

/// Strip a wider class of "visual" whitespace some lenient parsers eat:
/// SP, HTAB, VT (0x0B), FF (0x0C), CR.
std::string_view trim_lenient_ws(std::string_view s) noexcept;

/// Case-insensitive header-name match after lenient-whitespace trimming of
/// the wire name — the allocation-free equivalent of
/// `RawHeader::normalized_name() == to_lower(key)`.  The key most lenient
/// parsers actually use; every header lookup in message.h/response.h and
/// the view layer (view.h) routes through this.
bool header_name_is(std::string_view raw_name, std::string_view key) noexcept;

/// Split a comma-separated list field value into OWS-trimmed elements.
/// Empty elements are dropped, matching the `#rule` extension of RFC 7230.
std::vector<std::string> split_list(std::string_view value);

/// Last non-empty OWS-trimmed element of a comma-separated list value —
/// what the Transfer-Encoding framing rule inspects — as a view into
/// `value`.  Empty view when the list has no non-empty element.
/// Allocation-free counterpart of `split_list(value).back()`.
std::string_view last_list_item(std::string_view value) noexcept;

/// Parse a decimal Content-Length value strictly: 1*DIGIT only.
/// Rejects signs, hex, lists, whitespace inside, and values > 2^63-1.
std::optional<std::uint64_t> parse_content_length_strict(std::string_view v);

/// Lenient Content-Length parse in the style of permissive C parsers that
/// use strtol-like scanning: skips leading whitespace, accepts a leading '+',
/// stops at the first non-digit.  Returns nullopt only when no digits at all.
std::optional<std::uint64_t> parse_content_length_lenient(std::string_view v);

/// Parse a chunk-size hex number strictly (1*HEXDIG, no prefix, no sign).
/// `max_bits` bounds the accepted magnitude; overflow => nullopt.
std::optional<std::uint64_t> parse_chunk_size_strict(std::string_view v);

/// Lenient chunk-size parse modelling the truncating/overflowing scanners
/// found in several proxies: scans hex digits, wraps modulo 2^`wrap_bits`
/// instead of rejecting on overflow, stops at first non-hex character.
/// Returns nullopt only when the first character is not a hex digit.
std::optional<std::uint64_t> parse_chunk_size_wrapping(std::string_view v,
                                                       unsigned wrap_bits);

}  // namespace hdiff::http
