#include "http/header_util.h"

#include <cstdint>
#include <limits>

namespace hdiff::http {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ascii_lower(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

bool is_ows(char c) noexcept { return c == ' ' || c == '\t'; }

bool is_tchar(char c) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (char c : s) {
    if (!is_tchar(c)) return false;
  }
  return true;
}

bool is_field_vchar(char c) noexcept {
  unsigned char u = static_cast<unsigned char>(c);
  return (u >= 0x21 && u <= 0x7E) || u >= 0x80 || c == ' ' || c == '\t';
}

std::string_view trim_ows(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_ows(s[b])) ++b;
  while (e > b && is_ows(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string_view trim_lenient_ws(std::string_view s) noexcept {
  auto lenient = [](char c) {
    return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
  };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && lenient(s[b])) ++b;
  while (e > b && lenient(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool header_name_is(std::string_view raw_name, std::string_view key) noexcept {
  return iequals(trim_lenient_ws(raw_name), key);
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == ',') {
      std::string_view elem = trim_ows(value.substr(start, i - start));
      if (!elem.empty()) out.emplace_back(elem);
      start = i + 1;
    }
  }
  return out;
}

std::string_view last_list_item(std::string_view value) noexcept {
  std::string_view last;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == ',') {
      std::string_view elem = trim_ows(value.substr(start, i - start));
      if (!elem.empty()) last = elem;
      start = i + 1;
    }
  }
  return last;
}

std::optional<std::uint64_t> parse_content_length_strict(std::string_view v) {
  if (v.empty()) return std::nullopt;
  constexpr std::uint64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::uint64_t value = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint64_t> parse_content_length_lenient(std::string_view v) {
  std::size_t i = 0;
  while (i < v.size() && (v[i] == ' ' || v[i] == '\t' || v[i] == '\v' || v[i] == '\f')) {
    ++i;
  }
  if (i < v.size() && v[i] == '+') ++i;
  if (i >= v.size() || v[i] < '0' || v[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < v.size() && v[i] >= '0' && v[i] <= '9') {
    // Lenient scanners in C implementations typically wrap on overflow; we
    // saturate instead, which is indistinguishable for the test payload sizes
    // HDiff generates and avoids UB.
    std::uint64_t digit = static_cast<std::uint64_t>(v[i] - '0');
    constexpr std::uint64_t kMax = std::numeric_limits<std::int64_t>::max();
    value = (value > (kMax - digit) / 10) ? kMax : value * 10 + digit;
    ++i;
  }
  return value;
}

namespace {

std::optional<unsigned> hex_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
  return std::nullopt;
}

}  // namespace

std::optional<std::uint64_t> parse_chunk_size_strict(std::string_view v) {
  if (v.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : v) {
    auto d = hex_digit(c);
    if (!d) return std::nullopt;
    if (value > (std::numeric_limits<std::uint64_t>::max() >> 4)) {
      return std::nullopt;  // would overflow 64 bits
    }
    value = (value << 4) | *d;
  }
  // Strict decoders reject sizes that cannot fit in a signed length.
  if (value > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::uint64_t> parse_chunk_size_wrapping(std::string_view v,
                                                       unsigned wrap_bits) {
  if (v.empty() || !hex_digit(v[0])) return std::nullopt;
  const std::uint64_t mask = wrap_bits >= 64
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << wrap_bits) - 1);
  std::uint64_t value = 0;
  for (char c : v) {
    auto d = hex_digit(c);
    if (!d) break;  // stop at first non-hex char, e.g. extension ';'
    value = ((value << 4) | *d) & mask;
  }
  return value;
}

}  // namespace hdiff::http
