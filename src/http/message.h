// Raw HTTP/1.x request representation used across HDiff.
//
// The lexer (lexer.h) produces a `RawRequest`: the request line split into
// its three components plus the header block tokenized into `RawHeader`
// entries.  Crucially the lexer is *descriptive, not prescriptive* — it never
// rejects a malformed message; instead it records every syntax anomaly it
// observed so that each product behaviour model (src/impls) can decide, per
// its own policy, whether the anomaly is fatal, repairable, or silently
// tolerated.  That split is what lets ten different "implementations" consume
// the same wire bytes and disagree — the core mechanism of a semantic gap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::http {

/// HTTP request methods HDiff generates.  `kOther` carries unknown tokens.
enum class Method {
  kGet,
  kHead,
  kPost,
  kPut,
  kDelete,
  kOptions,
  kTrace,
  kConnect,
  kOther,
};

/// Parse a method token (exact, case-sensitive per RFC 7231 §4.1).
Method method_from_token(std::string_view token) noexcept;

/// Canonical token for a method (kOther yields "OTHER").
std::string_view to_string(Method m) noexcept;

/// An HTTP-version as interpreted by a parser.  `major==0 && minor==9`
/// denotes HTTP/0.9 (no version present on the request line).
struct Version {
  int major = 1;
  int minor = 1;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version&, const Version&) = default;
};

inline constexpr Version kHttp09{0, 9};
inline constexpr Version kHttp10{1, 0};
inline constexpr Version kHttp11{1, 1};
inline constexpr Version kHttp20{2, 0};

/// Render as "HTTP/x.y".
std::string to_string(Version v);

/// Strict version parse of a token: HTTP-version = "HTTP" "/" DIGIT "."
/// DIGIT (case-sensitive HTTP-name); nullopt if malformed.
std::optional<Version> parse_strict_version(std::string_view token) noexcept;

/// Per-line / per-field syntax anomalies the lexer can observe.  One message
/// may exhibit several.  The names follow the vocabulary of RFC 7230 and of
/// the paper's Table II.
enum class Anomaly : std::uint32_t {
  kNone = 0,
  kBareLf = 1u << 0,             ///< line terminated by LF without CR
  kBareCr = 1u << 1,             ///< stray CR not followed by LF inside a line
  kWsBeforeColon = 1u << 2,      ///< whitespace between field-name and ':'
  kWsInFieldName = 1u << 3,      ///< other whitespace/specials inside the name
  kObsFold = 1u << 4,            ///< obsolete line folding (continuation line)
  kLeadingHeaderWs = 1u << 5,    ///< first header line begins with whitespace
  kCtlInValue = 1u << 6,         ///< control char (not HTAB) in field value
  kNonTokenName = 1u << 7,       ///< field name contains non-tchar characters
  kMissingColon = 1u << 8,       ///< header line without any colon
  kEmptyName = 1u << 9,          ///< colon with empty field-name
  kExtraRequestLineWs = 1u << 10,///< multiple SP / TAB separators on request line
  kRequestLineParts = 1u << 11,  ///< request line does not have exactly 3 parts
  kNoVersion = 1u << 12,         ///< request line has no version token (0.9 form)
  kMalformedVersion = 1u << 13,  ///< version token not HTTP-name "/" DIGIT "." DIGIT
  kTruncatedHeaders = 1u << 14,  ///< input ended before the blank line
  kNulByte = 1u << 15,           ///< NUL byte present in the header block
  kHighBitChar = 1u << 16,       ///< byte >= 0x80 in request line or header
};

/// Bitset of `Anomaly` flags.
using AnomalySet = std::uint32_t;

inline bool has_anomaly(AnomalySet set, Anomaly a) noexcept {
  return (set & static_cast<std::uint32_t>(a)) != 0;
}
inline void add_anomaly(AnomalySet& set, Anomaly a) noexcept {
  set |= static_cast<std::uint32_t>(a);
}

/// Human-readable list of set anomaly flags, e.g. "ws-before-colon|obs-fold".
std::string describe_anomalies(AnomalySet set);

/// A single header field as it appeared on the wire.
struct RawHeader {
  std::string name;       ///< bytes before the colon, *un*trimmed
  std::string value;      ///< bytes after the colon, OWS-trimmed per RFC
  std::string raw_line;   ///< the full original line (no terminator)
  AnomalySet anomalies = 0;

  /// Name with surrounding whitespace removed and lower-cased — the key most
  /// lenient parsers actually use.
  std::string normalized_name() const;
};

/// The request line split into its parts, untouched.
struct RequestLine {
  std::string method_token;
  std::string target;
  std::string version_token;            ///< empty when absent (HTTP/0.9 form)
  std::string raw;                      ///< full original line
  AnomalySet anomalies = 0;

  /// Strict version parse of `version_token`; nullopt if malformed.
  std::optional<Version> strict_version() const;
};

/// A lexed request: request line + header block + the remaining connection
/// bytes (body candidate and any pipelined follow-on data).
struct RawRequest {
  RequestLine line;
  std::vector<RawHeader> headers;
  std::string after_headers;  ///< every byte after the header terminator
  AnomalySet anomalies = 0;   ///< union of all anomalies observed

  /// All headers whose *normalized* name equals `name` (lower-case compare).
  std::vector<const RawHeader*> find_all(std::string_view name) const;

  /// First header with the normalized name, or nullptr.
  const RawHeader* find_first(std::string_view name) const;

  /// Number of headers with the normalized name.
  std::size_t count(std::string_view name) const;
};

}  // namespace hdiff::http
