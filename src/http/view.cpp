#include "http/view.h"

#include <cstddef>

#include "http/header_util.h"

namespace hdiff::http {

namespace {

/// One physical line as a view plus how it was terminated.  Mirrors the
/// historical owned lexer's Line struct, minus the copy.
struct LineView {
  std::string_view text;   // line content without terminator
  bool bare_lf = false;    // terminated by LF without preceding CR
  bool stray_cr = false;   // CR appearing inside the line (not part of CRLF)
  bool terminated = true;  // false if input ended mid-line
  std::size_t end_offset = 0;  // offset one past the terminator in the input
};

/// Extract the next line starting at `pos`.  A line ends at the first LF;
/// a CR immediately before that LF is consumed as part of the terminator.
LineView next_line(std::string_view raw, std::size_t pos) {
  LineView line;
  std::size_t i = pos;
  while (i < raw.size() && raw[i] != '\n') ++i;
  if (i >= raw.size()) {
    line.text = raw.substr(pos);
    line.terminated = false;
    line.end_offset = raw.size();
  } else {
    std::size_t text_end = i;
    if (text_end > pos && raw[text_end - 1] == '\r') {
      --text_end;
    } else {
      line.bare_lf = true;
    }
    line.text = raw.substr(pos, text_end - pos);
    line.end_offset = i + 1;
  }
  line.stray_cr = line.text.find('\r') != std::string_view::npos;
  return line;
}

void scan_byte_anomalies(std::string_view text, AnomalySet& set) {
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u == 0) add_anomaly(set, Anomaly::kNulByte);
    if (u >= 0x80) add_anomaly(set, Anomaly::kHighBitChar);
  }
}

/// Split the request line on runs of SP/HTAB.  RFC 7230 mandates exactly one
/// SP between the three components; anything else is flagged.
void parse_request_line(const LineView& line, RequestLineView& out,
                        std::vector<std::string_view>& parts) {
  out.raw = line.text;
  if (line.bare_lf) add_anomaly(out.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(out.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, out.anomalies);

  const std::string_view s = line.text;
  bool saw_extra_ws = false;
  auto is_sep = [](char c) { return c == ' ' || c == '\t'; };
  std::size_t i = 0;
  while (i < s.size()) {
    if (is_sep(s[i])) {
      std::size_t run = 0;
      bool tab = false;
      while (i < s.size() && is_sep(s[i])) {
        tab = tab || s[i] == '\t';
        ++run;
        ++i;
      }
      if (tab || run > 1 || parts.empty() || i >= s.size()) saw_extra_ws = true;
      continue;
    }
    std::size_t start = i;
    while (i < s.size() && !is_sep(s[i])) ++i;
    parts.push_back(s.substr(start, i - start));
  }
  if (saw_extra_ws) add_anomaly(out.anomalies, Anomaly::kExtraRequestLineWs);

  if (parts.size() == 3) {
    out.method_token = parts[0];
    out.target = parts[1];
    out.version_token = parts[2];
  } else if (parts.size() == 2) {
    // HTTP/0.9 simple-request form: METHOD SP target
    out.method_token = parts[0];
    out.target = parts[1];
    add_anomaly(out.anomalies, Anomaly::kNoVersion);
  } else if (parts.size() > 3) {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    out.method_token = parts.front();
    out.version_token = parts.back();
    // The middle tokens span contiguous buffer bytes; the view keeps the
    // raw span (separators included) and materialize() re-joins the tokens
    // with single spaces, matching the owned lexer.
    const std::string_view first = parts[1];
    const std::string_view last = parts[parts.size() - 2];
    out.target = s.substr(
        static_cast<std::size_t>(first.data() - s.data()),
        static_cast<std::size_t>(last.data() + last.size() - first.data()));
    out.target_rejoined = true;
  } else {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    if (!parts.empty()) out.method_token = parts[0];
  }

  if (!out.version_token.empty() && !out.strict_version()) {
    add_anomaly(out.anomalies, Anomaly::kMalformedVersion);
  }
}

HeaderView parse_header_line(const LineView& line) {
  HeaderView h;
  h.raw_line = line.text;
  if (line.bare_lf) add_anomaly(h.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(h.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, h.anomalies);

  std::size_t colon = line.text.find(':');
  if (colon == std::string_view::npos) {
    add_anomaly(h.anomalies, Anomaly::kMissingColon);
    h.name = line.text;
    return h;
  }
  h.name = line.text.substr(0, colon);
  h.value = trim_ows(line.text.substr(colon + 1));

  if (h.name.empty()) {
    add_anomaly(h.anomalies, Anomaly::kEmptyName);
  } else {
    // Whitespace directly before the colon is the classic smuggling lever
    // ("Content-Length : 10"); other embedded whitespace is tracked apart.
    if (is_ows(h.name.back()) || h.name.back() == '\v' || h.name.back() == '\f') {
      add_anomaly(h.anomalies, Anomaly::kWsBeforeColon);
    }
    std::string_view core = trim_lenient_ws(h.name);
    for (char c : core) {
      if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
        add_anomaly(h.anomalies, Anomaly::kWsInFieldName);
        break;
      }
    }
    if (core.empty()) {
      add_anomaly(h.anomalies, Anomaly::kEmptyName);
    } else if (!is_token(core)) {
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    } else if (core.data() != h.name.data()) {
      // Leading control bytes (VT/FF/CR — SP/HTAB-led lines never reach
      // here) around an otherwise valid token: the name is not a token on
      // the wire, even though lenient recognizers will strip and match it.
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    }
  }
  for (char c : h.value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') {
      add_anomaly(h.anomalies, Anomaly::kCtlInValue);
      break;
    }
  }
  return h;
}

/// Materialize one HeaderView (plus its fold segments) into a RawHeader,
/// replaying the owned lexer's sequential join rules.
RawHeader materialize_header(const HeaderView& h,
                             const std::vector<FoldView>& folds) {
  RawHeader out;
  out.name.assign(h.name);
  out.value.assign(h.value);
  out.raw_line.assign(h.raw_line);
  out.anomalies = h.anomalies;
  for (std::uint32_t k = 0; k < h.fold_count; ++k) {
    const FoldView& fold = folds[h.fold_begin + k];
    if (!out.value.empty() && !fold.cont.empty()) out.value += ' ';
    out.value.append(fold.cont);
    out.raw_line += "\\n";
    out.raw_line.append(fold.raw_text);
  }
  return out;
}

}  // namespace

const HeaderView* RequestView::find_first(
    std::string_view name) const noexcept {
  for (const HeaderView& h : headers) {
    if (iequals(trim_lenient_ws(h.name), name)) return &h;
  }
  return nullptr;
}

std::size_t RequestView::count(std::string_view name) const noexcept {
  std::size_t n = 0;
  for (const HeaderView& h : headers) {
    if (iequals(trim_lenient_ws(h.name), name)) ++n;
  }
  return n;
}

std::string_view RequestView::joined_value(const HeaderView& h,
                                           std::string& scratch) const {
  if (!h.folded()) return h.value;
  scratch.assign(h.value);
  for (std::uint32_t k = 0; k < h.fold_count; ++k) {
    const FoldView& fold = folds[h.fold_begin + k];
    if (!scratch.empty() && !fold.cont.empty()) scratch += ' ';
    scratch.append(fold.cont);
  }
  return scratch;
}

RawRequest RequestView::materialize() const {
  RawRequest out;
  out.line.raw.assign(line.raw);
  out.line.method_token.assign(line.method_token);
  out.line.version_token.assign(line.version_token);
  out.line.anomalies = line.anomalies;
  if (line.target_rejoined) {
    // >3 request-line parts: the owned lexer joins the middle tokens with
    // single spaces regardless of the original separators.
    for (std::size_t p = 1; p + 1 < line_parts.size(); ++p) {
      if (!out.line.target.empty()) out.line.target += ' ';
      out.line.target.append(line_parts[p]);
    }
  } else {
    out.line.target.assign(line.target);
  }
  out.headers.reserve(headers.size());
  for (const HeaderView& h : headers) {
    out.headers.push_back(materialize_header(h, folds));
  }
  out.after_headers.assign(after_headers);
  out.anomalies = anomalies;
  return out;
}

void RequestView::clear() noexcept {
  raw = {};
  line = RequestLineView{};
  headers.clear();
  folds.clear();
  line_parts.clear();
  after_headers = {};
  anomalies = 0;
}

void parse_request_view(std::string_view raw, RequestView& out) {
  out.clear();
  out.raw = raw;
  std::size_t pos = 0;

  // Skip blank lines before the request line (RFC 7230 §3.5).
  LineView line = next_line(raw, pos);
  while (line.terminated && line.text.empty() && line.end_offset < raw.size()) {
    pos = line.end_offset;
    line = next_line(raw, pos);
  }

  parse_request_line(line, out.line, out.line_parts);
  out.anomalies |= out.line.anomalies;
  if (!line.terminated) {
    add_anomaly(out.anomalies, Anomaly::kTruncatedHeaders);
    return;
  }
  pos = line.end_offset;

  bool first_header = true;
  while (true) {
    if (pos >= raw.size()) {
      add_anomaly(out.anomalies, Anomaly::kTruncatedHeaders);
      return;
    }
    line = next_line(raw, pos);
    pos = line.end_offset;
    if (line.text.empty()) {
      if (!line.terminated) {
        add_anomaly(out.anomalies, Anomaly::kTruncatedHeaders);
        return;
      }
      break;  // end of header block
    }
    if (!line.terminated) {
      add_anomaly(out.anomalies, Anomaly::kTruncatedHeaders);
      // Still record the partial line so models can inspect it.
    }

    const bool starts_with_ws = line.text[0] == ' ' || line.text[0] == '\t';
    if (starts_with_ws && !first_header && !out.headers.empty()) {
      // Obsolete line folding: the line continues the previous field value.
      HeaderView& prev = out.headers.back();
      add_anomaly(prev.anomalies, Anomaly::kObsFold);
      add_anomaly(out.anomalies, Anomaly::kObsFold);
      if (prev.fold_count == 0) {
        prev.fold_begin = static_cast<std::uint32_t>(out.folds.size());
      }
      out.folds.push_back(FoldView{trim_ows(line.text), line.text});
      ++prev.fold_count;
      scan_byte_anomalies(line.text, out.anomalies);
      if (!line.terminated) return;
      continue;
    }

    HeaderView h = parse_header_line(line);
    if (starts_with_ws && first_header) {
      add_anomaly(h.anomalies, Anomaly::kLeadingHeaderWs);
    }
    out.anomalies |= h.anomalies;
    out.headers.push_back(h);
    first_header = false;
    if (!line.terminated) return;
  }

  out.after_headers = raw.substr(pos);
}

RequestView parse_request_view(std::string_view raw) {
  RequestView out;
  parse_request_view(raw, out);
  return out;
}

RawResponse ResponseView::materialize() const {
  RawResponse out;
  out.version = version;
  out.status = status;
  out.reason.assign(reason);
  out.headers.reserve(base.headers.size());
  for (const HeaderView& h : base.headers) {
    out.headers.push_back(materialize_header(h, base.folds));
  }
  out.after_headers.assign(base.after_headers);
  out.anomalies = base.anomalies;
  return out;
}

void ResponseView::clear() noexcept {
  base.clear();
  version = Version{1, 1};
  status = 0;
  reason = {};
}

namespace {

int parse_status_code(std::string_view token) {
  if (token.size() != 3) return 0;
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + (c - '0');
  }
  return (value >= 100 && value <= 599) ? value : 0;
}

}  // namespace

void parse_response_view(std::string_view raw, ResponseView& out) {
  out.clear();
  parse_request_view(raw, out.base);

  // status-line = HTTP-version SP status-code SP reason-phrase.  The
  // request tokenization mangles multi-word reason phrases, so the status
  // line is re-split from the raw line directly (same rule as the owned
  // lex_response, including its lax version check).
  const std::string_view raw_line = out.base.line.raw;
  std::size_t first_sp = raw_line.find(' ');
  if (first_sp == std::string_view::npos) return;
  std::string_view version_token = raw_line.substr(0, first_sp);
  if (version_token.size() == 8 && version_token.substr(0, 5) == "HTTP/" &&
      version_token[6] == '.') {
    out.version = Version{version_token[5] - '0', version_token[7] - '0'};
  }
  std::size_t second_sp = raw_line.find(' ', first_sp + 1);
  std::string_view status_token =
      second_sp == std::string_view::npos
          ? raw_line.substr(first_sp + 1)
          : raw_line.substr(first_sp + 1, second_sp - first_sp - 1);
  out.status = parse_status_code(status_token);
  if (second_sp != std::string_view::npos) {
    out.reason = raw_line.substr(second_sp + 1);
  }
}

ResponseView parse_response_view(std::string_view raw) {
  ResponseView out;
  parse_response_view(raw, out);
  return out;
}

Method sniff_method(std::string_view raw) noexcept {
  std::size_t pos = 0;
  LineView line = next_line(raw, pos);
  while (line.terminated && line.text.empty() && line.end_offset < raw.size()) {
    pos = line.end_offset;
    line = next_line(raw, pos);
  }
  // The owned lexer's request-line split assigns the first SP/HTAB-delimited
  // token as the method for every part count, so the sniff is just that
  // first token.
  const std::string_view s = line.text;
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  std::size_t start = i;
  while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
  return method_from_token(s.substr(start, i - start));
}

}  // namespace hdiff::http
