// Zero-copy parsed views over raw HTTP/1.x bytes.
//
// `RequestView` / `ResponseView` are the allocation-free counterparts of
// RawRequest / RawResponse: every field is a `std::string_view` into the
// single caller-owned buffer that was parsed, and the header block is a
// vector of name/value view pairs.  A *reused* view re-parses with zero
// allocations once its vectors have warmed up to the message shape — the
// property the observe hot path (chain hops, stream classification) relies
// on and bench_zero_copy asserts.
//
// Lifetime contract: a view NEVER outlives the buffer it was parsed from.
// Parsing borrows `raw`; nothing is copied, so the caller must keep the
// bytes alive and unmodified for as long as the view (or any view obtained
// from it) is read.  `materialize()` is the escape hatch: it deep-copies
// the view into the owned message types, byte-for-byte what the historical
// owned lexer produced — detectors and the campaign store consume only
// materialized messages and are untouched by this layer.
//
// The owned lexers (`lex_request`, `lex_response`) are implemented as
// `parse_*_view(raw).materialize()`, so the view parser is the single
// source of truth; `http::reference` keeps a frozen copy of the historical
// lexer as the differential oracle for the parity suite.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"
#include "http/response.h"

namespace hdiff::http {

/// One header field as a pair of views into the parsed buffer.  A folded
/// field (obs-fold continuations) keeps its first-line views here and
/// indexes its continuation segments in the owning view's `folds` array;
/// `value` is then only the first segment — use `joined_value()` on the
/// owning view (or `materialize()`) for the logical value.
struct HeaderView {
  std::string_view name;      ///< bytes before the colon, *un*trimmed
  std::string_view value;     ///< first-line value, OWS-trimmed
  std::string_view raw_line;  ///< first physical line (no terminator)
  AnomalySet anomalies = 0;
  std::uint32_t fold_begin = 0;  ///< index into the owning view's folds
  std::uint32_t fold_count = 0;

  bool folded() const noexcept { return fold_count != 0; }
};

/// One obs-fold continuation line.
struct FoldView {
  std::string_view cont;      ///< continuation content, OWS-trimmed
  std::string_view raw_text;  ///< the full continuation line
};

/// The request line split into views.  When the line has more than three
/// SP/HTAB-separated parts, `target` spans from the first to the last
/// middle token *including* the original separators; `materialize()`
/// re-joins the tokens with single spaces exactly as the owned lexer does
/// (the `target_rejoined` flag marks that case).
struct RequestLineView {
  std::string_view method_token;
  std::string_view target;
  std::string_view version_token;  ///< empty when absent (HTTP/0.9 form)
  std::string_view raw;            ///< full original line
  AnomalySet anomalies = 0;
  bool target_rejoined = false;

  std::optional<Version> strict_version() const noexcept {
    return parse_strict_version(version_token);
  }
};

/// A lexed request as views over one caller-owned buffer.  Reusable: a view
/// passed back into `parse_request_view` is cleared with its vector
/// capacity kept, so steady-state re-parsing allocates nothing.
struct RequestView {
  std::string_view raw;  ///< the buffer every other view points into
  RequestLineView line;
  std::vector<HeaderView> headers;
  std::vector<FoldView> folds;  ///< continuation lines, grouped per header
  std::vector<std::string_view> line_parts;  ///< request-line tokens
  std::string_view after_headers;
  AnomalySet anomalies = 0;

  /// First header matching `name` case-insensitively after lenient-ws
  /// normalization (same match rule as RawRequest::find_first); nullptr if
  /// absent.  Allocation-free.
  const HeaderView* find_first(std::string_view name) const noexcept;

  /// Number of headers matching `name` (allocation-free count()).
  std::size_t count(std::string_view name) const noexcept;

  /// Logical value of `h` with obs-fold continuations joined.  Unfolded
  /// headers return `h.value` directly; folded ones are assembled into
  /// `scratch` (the only case that can touch the heap, and only until
  /// `scratch` has warmed up).
  std::string_view joined_value(const HeaderView& h,
                                std::string& scratch) const;

  /// Deep copy into the owned representation, byte-identical to what the
  /// historical owned lexer produced for the same bytes.
  RawRequest materialize() const;

  /// Forget the previous parse but keep vector capacity.
  void clear() noexcept;
};

/// Parse `raw` into `out` (reusing its capacity).  Descriptive like the
/// owned lexer: never rejects, records anomalies.  `out` borrows `raw`.
void parse_request_view(std::string_view raw, RequestView& out);

/// Convenience single-shot form (no capacity reuse).
RequestView parse_request_view(std::string_view raw);

/// A lexed response as views.  Header-block machinery is shared with
/// RequestView (`base`); the status line is re-split from `base.line.raw`
/// exactly as the owned `lex_response` does.
struct ResponseView {
  RequestView base;
  Version version{1, 1};
  int status = 0;  ///< 0 when the status line is unparseable
  std::string_view reason;

  bool status_line_valid() const noexcept { return status != 0; }
  const std::vector<HeaderView>& headers() const noexcept {
    return base.headers;
  }
  std::string_view after_headers() const noexcept {
    return base.after_headers;
  }
  AnomalySet anomalies() const noexcept { return base.anomalies; }

  const HeaderView* find_first(std::string_view name) const noexcept {
    return base.find_first(name);
  }
  std::string_view joined_value(const HeaderView& h,
                                std::string& scratch) const {
    return base.joined_value(h, scratch);
  }

  RawResponse materialize() const;
  void clear() noexcept;
};

/// Parse `raw` as a response into `out` (reusing its capacity).
void parse_response_view(std::string_view raw, ResponseView& out);
ResponseView parse_response_view(std::string_view raw);

/// Framing decision computed directly on a response view — same rules as
/// `response_framing(const RawResponse&, Method)`.  Allocation-free except
/// when the Transfer-Encoding or Content-Length field is obs-folded, in
/// which case the logical value is assembled into `scratch`.
ResponseFraming response_framing(const ResponseView& response,
                                 Method request_method, std::string& scratch);

/// Completeness verdict for the first response on a connection stream,
/// computed without materializing anything: the allocation-free core of
/// `frame_first_response` for callers (the stream classifier, the event
/// loop) that only need to know whether more bytes are required.
struct ResponseProbe {
  bool status_line_valid = false;
  bool interim = false;   ///< 1xx informational response
  bool complete = false;  ///< false when more bytes are required
};

/// Probe the first response in `raw` for a request with `request_method`.
/// `probe.complete` matches `frame_first_response(raw, m).complete` exactly.
ResponseProbe probe_first_response(std::string_view raw,
                                   Method request_method) noexcept;

/// Method of the request at the head of `raw` — byte-for-byte the token
/// `lex_request(raw).line.method_token` would carry, computed from the
/// request line alone with zero allocations.  The chain's per-hop method
/// sniff and the stream classifier use this instead of a full lex.
Method sniff_method(std::string_view raw) noexcept;

}  // namespace hdiff::http
