#include "http/uri.h"

#include "http/header_util.h"

namespace hdiff::http {

namespace {

bool is_unreserved(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' || c == '~';
}

bool is_sub_delim(char c) noexcept {
  switch (c) {
    case '!': case '$': case '&': case '\'': case '(': case ')': case '*':
    case '+': case ',': case ';': case '=':
      return true;
    default:
      return false;
  }
}

bool is_scheme_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
}

bool is_hex(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

/// reg-name character, treating pct-encoded as validated separately.
bool valid_reg_name_chars(std::string_view s) noexcept {
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size() || !is_hex(s[i + 1]) || !is_hex(s[i + 2])) {
        return false;
      }
      i += 2;
    } else if (!is_unreserved(c) && !is_sub_delim(c)) {
      return false;
    }
  }
  return true;
}

bool is_ipv6_literal(std::string_view s) noexcept {
  if (s.size() < 4 || s.front() != '[' || s.back() != ']') return false;
  for (char c : s.substr(1, s.size() - 2)) {
    if (!is_hex(c) && c != ':' && c != '.') return false;
  }
  return true;
}

}  // namespace

std::string_view to_string(TargetForm f) noexcept {
  switch (f) {
    case TargetForm::kOrigin: return "origin-form";
    case TargetForm::kAbsolute: return "absolute-form";
    case TargetForm::kAuthority: return "authority-form";
    case TargetForm::kAsterisk: return "asterisk-form";
    case TargetForm::kMalformed: return "malformed";
  }
  return "malformed";
}

std::string_view to_string(HostExtraction e) noexcept {
  switch (e) {
    case HostExtraction::kStrict: return "strict";
    case HostExtraction::kWholeValue: return "whole-value";
    case HostExtraction::kBeforeDelims: return "before-delims";
    case HostExtraction::kAfterAt: return "after-at";
    case HostExtraction::kFirstListItem: return "first-list-item";
    case HostExtraction::kLastListItem: return "last-list-item";
  }
  return "strict";
}

bool is_valid_reg_name(std::string_view host) noexcept {
  if (host.empty()) return false;
  if (is_ipv6_literal(host)) return true;
  return valid_reg_name_chars(host);
}

Authority parse_authority(std::string_view s) {
  Authority out;
  // userinfo: bytes before the *last* '@' (RFC: first '@' terminates
  // userinfo, but userinfo itself may not contain '@'; using the last '@'
  // matches the spec because '@' is illegal inside userinfo anyway, and it
  // is the convention security-sensitive parsers are told to follow).
  std::string_view rest = s;
  std::size_t at = rest.rfind('@');
  if (at != std::string_view::npos) {
    out.userinfo.assign(rest.substr(0, at));
    rest.remove_prefix(at + 1);
  }
  // IPv6 literal keeps its colons inside brackets.
  if (!rest.empty() && rest.front() == '[') {
    std::size_t close = rest.find(']');
    if (close == std::string_view::npos) return out;  // invalid
    out.host.assign(rest.substr(0, close + 1));
    rest.remove_prefix(close + 1);
    if (!rest.empty()) {
      if (rest.front() != ':') return out;
      out.port.assign(rest.substr(1));
    }
  } else {
    std::size_t colon = rest.rfind(':');
    if (colon != std::string_view::npos &&
        rest.find(':') == colon) {  // exactly one colon => host:port
      out.host.assign(rest.substr(0, colon));
      out.port.assign(rest.substr(colon + 1));
    } else if (colon == std::string_view::npos) {
      out.host.assign(rest);
    } else {
      // multiple colons outside brackets: not a valid authority
      out.host.assign(rest);
      return out;
    }
  }
  // Validate.
  for (char c : out.userinfo) {
    if (!is_unreserved(c) && !is_sub_delim(c) && c != ':' && c != '%') return out;
  }
  for (char c : out.port) {
    if (c < '0' || c > '9') return out;
  }
  if (!is_valid_reg_name(out.host)) return out;
  out.valid = true;
  return out;
}

RequestTarget parse_request_target(std::string_view target) {
  RequestTarget out;
  out.raw.assign(target);
  if (target.empty()) return out;

  if (target == "*") {
    out.form = TargetForm::kAsterisk;
    return out;
  }
  if (target.front() == '/') {
    out.form = TargetForm::kOrigin;
    std::size_t q = target.find('?');
    if (q == std::string_view::npos) {
      out.path.assign(target);
    } else {
      out.path.assign(target.substr(0, q));
      out.query.assign(target.substr(q + 1));
    }
    return out;
  }
  // absolute-form: scheme ":" "//" authority path-abempty [ "?" query ]
  std::size_t colon = target.find(':');
  const bool alpha_start = (target[0] >= 'a' && target[0] <= 'z') ||
                           (target[0] >= 'A' && target[0] <= 'Z');
  if (colon != std::string_view::npos && colon > 0 && alpha_start) {
    bool scheme_ok = true;
    for (char c : target.substr(0, colon)) {
      if (!is_scheme_char(c)) {
        scheme_ok = false;
        break;
      }
    }
    if (scheme_ok && target.size() > colon + 2 && target[colon + 1] == '/' &&
        target[colon + 2] == '/') {
      out.scheme = to_lower(target.substr(0, colon));
      std::string_view rest = target.substr(colon + 3);
      std::size_t path_start = rest.find_first_of("/?");
      std::string_view auth = path_start == std::string_view::npos
                                  ? rest
                                  : rest.substr(0, path_start);
      out.authority = parse_authority(auth);
      if (path_start != std::string_view::npos) {
        std::string_view tail = rest.substr(path_start);
        std::size_t q = tail.find('?');
        if (q == std::string_view::npos) {
          out.path.assign(tail);
        } else {
          out.path.assign(tail.substr(0, q));
          out.query.assign(tail.substr(q + 1));
        }
      }
      if (out.path.empty()) out.path = "/";
      out.form = TargetForm::kAbsolute;
      return out;
    }
  }
  // authority-form (CONNECT): host ":" port with no scheme or slash.
  {
    Authority auth = parse_authority(target);
    if (auth.valid && auth.userinfo.empty() && !auth.port.empty()) {
      out.authority = auth;
      out.form = TargetForm::kAuthority;
      return out;
    }
  }
  return out;  // malformed
}

std::string extract_host(std::string_view value, HostExtraction strategy) {
  std::string_view v = trim_ows(value);
  auto strip_port = [](std::string_view h) -> std::string_view {
    if (!h.empty() && h.front() == '[') {
      std::size_t close = h.find(']');
      if (close != std::string_view::npos) return h.substr(0, close + 1);
      return h;
    }
    std::size_t colon = h.rfind(':');
    if (colon != std::string_view::npos && h.find(':') == colon) {
      return h.substr(0, colon);
    }
    return h;
  };
  switch (strategy) {
    case HostExtraction::kStrict: {
      Authority auth = parse_authority(v);
      if (!auth.valid || !auth.userinfo.empty()) return {};
      return auth.host;
    }
    case HostExtraction::kWholeValue:
      return std::string(v);
    case HostExtraction::kBeforeDelims: {
      std::size_t cut = v.find_first_of("@,/?#\\ \t");
      if (cut != std::string_view::npos) v = v.substr(0, cut);
      return std::string(strip_port(v));
    }
    case HostExtraction::kAfterAt: {
      std::size_t at = v.rfind('@');
      if (at != std::string_view::npos) v = v.substr(at + 1);
      std::size_t cut = v.find_first_of(",/?# \t");
      if (cut != std::string_view::npos) v = v.substr(0, cut);
      return std::string(strip_port(v));
    }
    case HostExtraction::kFirstListItem: {
      std::size_t comma = v.find(',');
      if (comma != std::string_view::npos) v = trim_ows(v.substr(0, comma));
      return std::string(strip_port(v));
    }
    case HostExtraction::kLastListItem: {
      std::size_t comma = v.rfind(',');
      if (comma != std::string_view::npos) v = trim_ows(v.substr(comma + 1));
      return std::string(strip_port(v));
    }
  }
  return {};
}

}  // namespace hdiff::http
