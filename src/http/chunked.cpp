#include "http/chunked.h"

#include <cstdio>
#include <optional>

#include "http/header_util.h"

namespace hdiff::http {

namespace {

/// One framing line as a view into the scanned input.
struct LineRead {
  std::string_view text;
  std::size_t next = 0;   // offset after terminator
  bool found = false;     // a terminator was found
  bool bare_lf = false;
};

LineRead read_line(std::string_view in, std::size_t pos) {
  LineRead out;
  std::size_t i = pos;
  while (i < in.size() && in[i] != '\n') ++i;
  if (i >= in.size()) {
    out.text = in.substr(pos);
    out.next = in.size();
    return out;
  }
  std::size_t end = i;
  if (end > pos && in[end - 1] == '\r') {
    --end;
  } else {
    out.bare_lf = true;
  }
  out.text = in.substr(pos, end - pos);
  out.next = i + 1;
  out.found = true;
  return out;
}

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

}  // namespace

std::size_t ChunkScan::body_size() const noexcept {
  std::size_t n = 0;
  for (const auto& [offset, length] : data) n += length;
  return n;
}

void ChunkScan::reset() noexcept {
  ok = false;
  incomplete = false;
  size_overflowed = false;
  saw_nul = false;
  leftover_begin = std::string_view::npos;
  error = {};
  data.clear();
  chunk_sizes.clear();
}

void scan_chunked(std::string_view in, const ChunkPolicy& policy,
                  ChunkScan& r) {
  r.reset();
  std::size_t pos = 0;
  while (true) {
    LineRead line = read_line(in, pos);
    if (!line.found) {
      r.incomplete = true;
      r.error = "input ended inside chunk-size line";
      return;
    }
    if (line.bare_lf && !policy.allow_bare_lf) {
      r.error = "bare LF in chunk framing";
      return;
    }
    pos = line.next;

    // Split size token from extension / garbage.
    std::string_view size_line = line.text;
    std::string_view size_token = size_line;
    std::string_view tail;
    std::size_t semi = size_line.find(';');
    if (semi != std::string_view::npos) {
      size_token = size_line.substr(0, semi);
      tail = size_line.substr(semi);
    }
    size_token = trim_ows(size_token);

    std::optional<std::uint64_t> size;
    bool overflowed = false;
    if (policy.wrapping_size || policy.lenient_size_line) {
      // Scan leading hex digits; wrap or truncate per policy.
      std::size_t digits = 0;
      while (digits < size_token.size() && is_hex(size_token[digits])) ++digits;
      if (digits == 0) {
        r.error = "chunk-size has no hex digits";
        return;
      }
      if (digits < size_token.size() && !policy.lenient_size_line) {
        r.error = "garbage after chunk-size";
        return;
      }
      unsigned wrap = policy.wrapping_size ? policy.wrap_bits : 64;
      size = parse_chunk_size_wrapping(size_token.substr(0, digits), wrap);
      // Detect that wrapping actually lost information.
      auto strict = parse_chunk_size_strict(size_token.substr(0, digits));
      overflowed = !strict || (size && *strict != *size);
      if (digits < size_token.size()) overflowed = true;
    } else {
      size = parse_chunk_size_strict(size_token);
      if (!size) {
        r.error = "invalid chunk-size";
        return;
      }
      if (!tail.empty() && !policy.allow_extensions) {
        r.error = "chunk extension not allowed";
        return;
      }
    }
    if (!size) {
      r.error = "invalid chunk-size";
      return;
    }
    r.size_overflowed = r.size_overflowed || overflowed;
    if (*size > policy.max_chunk_size) {
      r.error = "chunk-size exceeds implementation limit";
      return;
    }
    r.chunk_sizes.push_back(*size);

    if (overflowed && policy.wrapping_size && *size != 0) {
      // Repair mode: the size line was damaged, so the parser does not trust
      // the (wrapped) value for framing either — it takes the bytes up to
      // the next line terminator as the chunk data.  This is the "repaired
      // data still contains semantically ambiguous data" behaviour of
      // §IV-B: the re-emitted size no longer matches the data.
      LineRead data_line = read_line(in, pos);
      if (!data_line.found) {
        r.incomplete = true;
        r.error = "input ended inside repaired chunk-data";
        return;
      }
      if (!data_line.text.empty()) {
        r.data.emplace_back(pos, data_line.text.size());
      }
      pos = data_line.next;
      continue;
    }

    if (*size == 0) {
      // Trailer section: header lines until an empty line.
      while (true) {
        LineRead trailer = read_line(in, pos);
        if (!trailer.found) {
          r.incomplete = true;
          r.error = "input ended inside trailer section";
          return;
        }
        if (trailer.bare_lf && !policy.allow_bare_lf) {
          r.error = "bare LF in trailer";
          return;
        }
        pos = trailer.next;
        if (trailer.text.empty()) break;
      }
      r.ok = true;
      r.leftover_begin = pos;
      return;
    }

    if (pos + *size > in.size()) {
      r.incomplete = true;
      r.error = "input ended inside chunk-data";
      return;
    }
    std::string_view data = in.substr(pos, static_cast<std::size_t>(*size));
    std::size_t nul_at = data.find('\0');
    if (nul_at != std::string_view::npos) {
      r.saw_nul = true;
      if (policy.reject_nul_in_data) {
        r.error = "NUL byte in chunk-data";
        return;
      }
      if (policy.nul_terminates_body) {
        r.ok = true;
        if (nul_at != 0) r.data.emplace_back(pos, nul_at);
        r.leftover_begin = pos + nul_at + 1;
        r.error = "body terminated at NUL byte";
        return;
      }
    }
    r.data.emplace_back(pos, data.size());
    pos += static_cast<std::size_t>(*size);

    // CRLF after chunk-data.
    bool crlf_ok = false;
    if (pos + 1 < in.size() && in[pos] == '\r' && in[pos + 1] == '\n') {
      pos += 2;
      crlf_ok = true;
    } else if (pos < in.size() && in[pos] == '\n' && policy.allow_bare_lf) {
      pos += 1;
      crlf_ok = true;
    }
    if (!crlf_ok) {
      // Distinguish "not CRLF" from "CRLF not yet fully received": input
      // ending exactly at the boundary, or on a lone CR, is incomplete.
      const bool crlf_may_follow =
          pos >= in.size() || (pos + 1 >= in.size() && in[pos] == '\r');
      if (crlf_may_follow) {
        r.incomplete = true;
        r.error = "input ended before chunk-data CRLF";
        return;
      }
      if (policy.require_crlf_after_data) {
        r.error = "chunk-data not followed by CRLF";
        return;
      }
      // Resynchronize: scan for the next LF and continue from there.  This
      // models the repair behaviour of proxies that trust the size line only
      // loosely and hunt for the next framing boundary.
      std::size_t lf = in.find('\n', pos);
      if (lf == std::string_view::npos) {
        r.incomplete = true;
        r.error = "resync failed: no further LF";
        return;
      }
      pos = lf + 1;
    }
  }
}

ChunkResult decode_chunked(std::string_view in, const ChunkPolicy& policy) {
  thread_local ChunkScan scan;
  scan_chunked(in, policy, scan);

  ChunkResult r;
  r.ok = scan.ok;
  r.incomplete = scan.incomplete;
  r.size_overflowed = scan.size_overflowed;
  r.saw_nul = scan.saw_nul;
  r.error.assign(scan.error);
  r.chunk_sizes = scan.chunk_sizes;
  r.body.reserve(scan.body_size());
  for (const auto& [offset, length] : scan.data) {
    r.body.append(in.substr(offset, length));
  }
  if (scan.ok) r.leftover.assign(in.substr(scan.leftover_begin));
  return r;
}

std::string encode_chunked(std::string_view body) {
  std::string out;
  if (!body.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%zx", body.size());
    out += buf;
    out += "\r\n";
    out.append(body);
    out += "\r\n";
  }
  out += "0\r\n\r\n";
  return out;
}

}  // namespace hdiff::http
