// Request-target and authority parsing (RFC 7230 §5.3, RFC 3986 §3.2).
//
// HoT-style attacks hinge on *where* an implementation believes the target
// host is stated (request-line absolute-URI vs Host header) and *how* it
// extracts a hostname from an ambiguous authority string such as
// "h1.com@h2.com" or "h1.com, h2.com".  This header provides one strict
// reference parser plus the lenient extraction strategies observed in real
// implementations; the per-product models pick a strategy via ParsePolicy.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace hdiff::http {

/// The five request-target forms of RFC 7230 §5.3.
enum class TargetForm {
  kOrigin,     ///< "/path?query"
  kAbsolute,   ///< "scheme://authority/path?query"
  kAuthority,  ///< "host:port" (CONNECT only)
  kAsterisk,   ///< "*" (OPTIONS only)
  kMalformed,  ///< none of the above
};

std::string_view to_string(TargetForm f) noexcept;

/// Decomposed authority component.
struct Authority {
  std::string userinfo;  ///< bytes before '@' (empty if none)
  std::string host;
  std::string port;      ///< digits after ':' (empty if none)
  bool valid = false;    ///< strict RFC 3986 validity
};

/// Decomposed request-target.
struct RequestTarget {
  TargetForm form = TargetForm::kMalformed;
  std::string scheme;    ///< lower-cased; absolute form only
  Authority authority;   ///< absolute / authority forms
  std::string path;
  std::string query;
  std::string raw;
};

/// Classify and decompose a request-target string.  Never throws; a target
/// that fits no form comes back as kMalformed with `raw` preserved.
RequestTarget parse_request_target(std::string_view target);

/// Strict authority parse per RFC 3986 §3.2: optional userinfo '@', then
/// reg-name / IPv4 / "[" IPv6 "]", optional ":" port (digits only).
/// `valid` is false if any component violates the grammar.
Authority parse_authority(std::string_view s);

/// Lenient host-extraction strategies seen in deployed HTTP stacks.  Applied
/// to the raw value of a Host header (or an authority string).
enum class HostExtraction {
  kStrict,        ///< RFC 3986 parse; invalid input yields empty host
  kWholeValue,    ///< take the whole (OWS-trimmed) value, no validation
  kBeforeDelims,  ///< cut at first of "@ , / ? # \\" then strip port
  kAfterAt,       ///< take bytes after the last '@' (URL-semantics parsers)
  kFirstListItem, ///< split on ',' and take the first element
  kLastListItem,  ///< split on ',' and take the last element
};

std::string_view to_string(HostExtraction e) noexcept;

/// Apply an extraction strategy; returns the hostname (possibly empty) the
/// implementation would route on.  The port suffix ":NNN" is removed for all
/// strategies except kWholeValue.
std::string extract_host(std::string_view value, HostExtraction strategy);

/// True if `host` is a syntactically valid reg-name / IPv4 / bracketed IPv6
/// hostname under RFC 3986 (sub-delims allowed in reg-name, so "h1.com" and
/// even "h1.com," are judged by the grammar, not by DNS rules).
bool is_valid_reg_name(std::string_view host) noexcept;

}  // namespace hdiff::http
