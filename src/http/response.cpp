#include "http/response.h"

#include "http/chunked.h"
#include "http/header_util.h"
#include "http/lexer.h"

namespace hdiff::http {

namespace {

/// Reuse the request lexer's header-block machinery by lexing the raw bytes
/// as if they were a request, then reinterpret the "request line" as a
/// status line.
int parse_status_code(std::string_view token) {
  if (token.size() != 3) return 0;
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + (c - '0');
  }
  return (value >= 100 && value <= 599) ? value : 0;
}

}  // namespace

const RawHeader* RawResponse::find_first(std::string_view name) const {
  std::string key = to_lower(name);
  for (const auto& h : headers) {
    if (h.normalized_name() == key) return &h;
  }
  return nullptr;
}

RawResponse lex_response(std::string_view raw) {
  RawResponse out;
  RawRequest as_request = lex_request(raw);
  out.headers = std::move(as_request.headers);
  out.after_headers = std::move(as_request.after_headers);
  out.anomalies = as_request.anomalies;

  // status-line = HTTP-version SP status-code SP reason-phrase.  The
  // request lexer's tokenization mangles multi-word reason phrases, so the
  // status line is re-split from the raw line directly.
  const std::string& raw_line = as_request.line.raw;
  std::size_t first_sp = raw_line.find(' ');
  if (first_sp == std::string::npos) return out;
  std::string_view version_token =
      std::string_view(raw_line).substr(0, first_sp);
  if (version_token.size() == 8 && version_token.substr(0, 5) == "HTTP/" &&
      version_token[6] == '.') {
    out.version = Version{version_token[5] - '0', version_token[7] - '0'};
  }
  std::size_t second_sp = raw_line.find(' ', first_sp + 1);
  std::string_view status_token =
      second_sp == std::string::npos
          ? std::string_view(raw_line).substr(first_sp + 1)
          : std::string_view(raw_line).substr(first_sp + 1,
                                              second_sp - first_sp - 1);
  out.status = parse_status_code(status_token);
  if (second_sp != std::string::npos) {
    out.reason = raw_line.substr(second_sp + 1);
  }
  return out;
}

ResponseFraming response_framing(const RawResponse& response,
                                 Method request_method) {
  ResponseFraming framing;
  const int status = response.status;
  if (request_method == Method::kHead || (status >= 100 && status < 200) ||
      status == 204 || status == 304) {
    framing.has_body = false;
    return framing;
  }
  if (const RawHeader* te = response.find_first("transfer-encoding")) {
    auto items = split_list(te->value);
    if (!items.empty() && iequals(items.back(), "chunked")) {
      framing.chunked = true;
      return framing;
    }
  }
  if (const RawHeader* cl = response.find_first("content-length")) {
    framing.content_length =
        parse_content_length_strict(trim_ows(cl->value));
    if (framing.content_length) return framing;
  }
  framing.until_close = true;
  return framing;
}

FramedResponse frame_first_response(std::string_view raw,
                                    Method request_method) {
  FramedResponse out;
  out.head = lex_response(raw);
  if (!out.head.status_line_valid()) return out;
  out.interim = out.head.status >= 100 && out.head.status < 200;

  ResponseFraming framing = response_framing(out.head, request_method);
  const std::string& payload = out.head.after_headers;
  if (!framing.has_body) {
    out.leftover = payload;
    out.complete = true;
    return out;
  }
  if (framing.chunked) {
    ChunkResult r = decode_chunked(payload, ChunkPolicy{});
    if (r.ok) {
      out.body = r.body;
      out.leftover = r.leftover;
      out.complete = true;
    }
    return out;
  }
  if (framing.content_length) {
    if (payload.size() < *framing.content_length) return out;  // incomplete
    out.body = payload.substr(0, static_cast<std::size_t>(
                                     *framing.content_length));
    out.leftover = payload.substr(static_cast<std::size_t>(
        *framing.content_length));
    out.complete = true;
    return out;
  }
  // read-until-close: everything that arrived is the body.
  out.body = payload;
  out.complete = true;
  return out;
}

std::string build_response(int status, std::string_view body,
                           std::string_view extra_headers) {
  std::string reason;
  switch (status) {
    case 100: reason = "Continue"; break;
    case 200: reason = "OK"; break;
    case 204: reason = "No Content"; break;
    case 304: reason = "Not Modified"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 417: reason = "Expectation Failed"; break;
    case 501: reason = "Not Implemented"; break;
    default: reason = "Status"; break;
  }
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out.append(extra_headers);
  const bool bodyless = (status >= 100 && status < 200) || status == 204 ||
                        status == 304;
  if (!bodyless) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  if (!bodyless) out.append(body);
  return out;
}

}  // namespace hdiff::http
