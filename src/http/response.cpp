#include "http/response.h"

#include "http/chunked.h"
#include "http/header_util.h"
#include "http/view.h"

namespace hdiff::http {

const RawHeader* RawResponse::find_first(std::string_view name) const {
  for (const auto& h : headers) {
    if (header_name_is(h.name, name)) return &h;
  }
  return nullptr;
}

RawResponse lex_response(std::string_view raw) {
  thread_local ResponseView view;
  parse_response_view(raw, view);
  RawResponse out = view.materialize();
  view.clear();  // do not keep borrowing `raw` past this call
  return out;
}

ResponseFraming response_framing(const RawResponse& response,
                                 Method request_method) {
  ResponseFraming framing;
  const int status = response.status;
  if (request_method == Method::kHead || (status >= 100 && status < 200) ||
      status == 204 || status == 304) {
    framing.has_body = false;
    return framing;
  }
  if (const RawHeader* te = response.find_first("transfer-encoding")) {
    std::string_view last = last_list_item(te->value);
    if (!last.empty() && iequals(last, "chunked")) {
      framing.chunked = true;
      return framing;
    }
  }
  if (const RawHeader* cl = response.find_first("content-length")) {
    framing.content_length =
        parse_content_length_strict(trim_ows(cl->value));
    if (framing.content_length) return framing;
  }
  framing.until_close = true;
  return framing;
}

ResponseFraming response_framing(const ResponseView& response,
                                 Method request_method, std::string& scratch) {
  ResponseFraming framing;
  const int status = response.status;
  if (request_method == Method::kHead || (status >= 100 && status < 200) ||
      status == 204 || status == 304) {
    framing.has_body = false;
    return framing;
  }
  if (const HeaderView* te = response.find_first("transfer-encoding")) {
    std::string_view last =
        last_list_item(response.joined_value(*te, scratch));
    if (!last.empty() && iequals(last, "chunked")) {
      framing.chunked = true;
      return framing;
    }
  }
  if (const HeaderView* cl = response.find_first("content-length")) {
    framing.content_length = parse_content_length_strict(
        trim_ows(response.joined_value(*cl, scratch)));
    if (framing.content_length) return framing;
  }
  framing.until_close = true;
  return framing;
}

FramedResponse frame_first_response(std::string_view raw,
                                    Method request_method) {
  FramedResponse out;
  out.head = lex_response(raw);
  if (!out.head.status_line_valid()) return out;
  out.interim = out.head.status >= 100 && out.head.status < 200;

  ResponseFraming framing = response_framing(out.head, request_method);
  const std::string& payload = out.head.after_headers;
  if (!framing.has_body) {
    out.leftover = payload;
    out.complete = true;
    return out;
  }
  if (framing.chunked) {
    ChunkResult r = decode_chunked(payload, ChunkPolicy{});
    if (r.ok) {
      out.body = r.body;
      out.leftover = r.leftover;
      out.complete = true;
    }
    return out;
  }
  if (framing.content_length) {
    if (payload.size() < *framing.content_length) return out;  // incomplete
    out.body = payload.substr(0, static_cast<std::size_t>(
                                     *framing.content_length));
    out.leftover = payload.substr(static_cast<std::size_t>(
        *framing.content_length));
    out.complete = true;
    return out;
  }
  // read-until-close: everything that arrived is the body.
  out.body = payload;
  out.complete = true;
  return out;
}

ResponseProbe probe_first_response(std::string_view raw,
                                   Method request_method) noexcept {
  thread_local ResponseView view;
  thread_local std::string scratch;
  thread_local ChunkScan scan;

  ResponseProbe probe;
  parse_response_view(raw, view);
  if (!view.status_line_valid()) {
    view.clear();
    return probe;
  }
  probe.status_line_valid = true;
  probe.interim = view.status >= 100 && view.status < 200;

  ResponseFraming framing = response_framing(view, request_method, scratch);
  const std::string_view payload = view.after_headers();
  if (!framing.has_body) {
    probe.complete = true;
  } else if (framing.chunked) {
    scan_chunked(payload, ChunkPolicy{}, scan);
    probe.complete = scan.ok;
  } else if (framing.content_length) {
    probe.complete = payload.size() >= *framing.content_length;
  } else {
    probe.complete = true;  // read-until-close
  }
  view.clear();
  return probe;
}

std::string build_response(int status, std::string_view body,
                           std::string_view extra_headers) {
  std::string reason;
  switch (status) {
    case 100: reason = "Continue"; break;
    case 200: reason = "OK"; break;
    case 204: reason = "No Content"; break;
    case 304: reason = "Not Modified"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 417: reason = "Expectation Failed"; break;
    case 501: reason = "Not Implemented"; break;
    default: reason = "Status"; break;
  }
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out.append(extra_headers);
  const bool bodyless = (status >= 100 && status < 200) || status == 204 ||
                        status == 304;
  if (!bodyless) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  if (!bodyless) out.append(body);
  return out;
}

}  // namespace hdiff::http
