// Frozen pre-view parsers — see reference.h.  These are verbatim copies of
// the lexer.cpp / response.cpp / chunked.cpp implementations as of the PR
// that introduced http::view, with only the namespace changed and response
// header lookup inlined (the old `normalized_name() == to_lower(key)` walk).
// Deliberately allocation-heavy; used only by the parity tests and
// `hdiff selftest --views`.
#include "http/reference.h"

#include <cstddef>
#include <optional>

#include "http/header_util.h"

namespace hdiff::http::reference {

namespace {

/// One physical line plus how it was terminated.
struct Line {
  std::string text;        // line content without terminator
  bool bare_lf = false;    // terminated by LF without preceding CR
  bool stray_cr = false;   // CR appearing inside the line (not part of CRLF)
  bool terminated = true;  // false if input ended mid-line
  std::size_t end_offset = 0;  // offset one past the terminator in the input
};

/// Extract the next line starting at `pos`.  A line ends at the first LF;
/// a CR immediately before that LF is consumed as part of the terminator.
Line next_line(std::string_view raw, std::size_t pos) {
  Line line;
  std::size_t i = pos;
  while (i < raw.size() && raw[i] != '\n') ++i;
  if (i >= raw.size()) {
    line.text.assign(raw.substr(pos));
    line.terminated = false;
    line.end_offset = raw.size();
  } else {
    std::size_t text_end = i;
    if (text_end > pos && raw[text_end - 1] == '\r') {
      --text_end;
    } else {
      line.bare_lf = true;
    }
    line.text.assign(raw.substr(pos, text_end - pos));
    line.end_offset = i + 1;
  }
  for (char c : line.text) {
    if (c == '\r') {
      line.stray_cr = true;
      break;
    }
  }
  return line;
}

void scan_byte_anomalies(std::string_view text, AnomalySet& set) {
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u == 0) add_anomaly(set, Anomaly::kNulByte);
    if (u >= 0x80) add_anomaly(set, Anomaly::kHighBitChar);
  }
}

/// Split the request line on runs of SP/HTAB.  RFC 7230 mandates exactly one
/// SP between the three components; anything else is flagged.
void parse_request_line(const Line& line, RequestLine& out) {
  out.raw = line.text;
  if (line.bare_lf) add_anomaly(out.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(out.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, out.anomalies);

  const std::string& s = line.text;
  std::vector<std::string> parts;
  bool saw_extra_ws = false;
  auto is_sep = [](char c) { return c == ' ' || c == '\t'; };
  std::size_t i = 0;
  while (i < s.size()) {
    if (is_sep(s[i])) {
      std::size_t run = 0;
      bool tab = false;
      while (i < s.size() && is_sep(s[i])) {
        tab = tab || s[i] == '\t';
        ++run;
        ++i;
      }
      if (tab || run > 1 || parts.empty() || i >= s.size()) saw_extra_ws = true;
      continue;
    }
    std::size_t start = i;
    while (i < s.size() && !is_sep(s[i])) ++i;
    parts.emplace_back(s.substr(start, i - start));
  }
  if (saw_extra_ws) add_anomaly(out.anomalies, Anomaly::kExtraRequestLineWs);

  if (parts.size() == 3) {
    out.method_token = parts[0];
    out.target = parts[1];
    out.version_token = parts[2];
  } else if (parts.size() == 2) {
    // HTTP/0.9 simple-request form: METHOD SP target
    out.method_token = parts[0];
    out.target = parts[1];
    add_anomaly(out.anomalies, Anomaly::kNoVersion);
  } else if (parts.size() > 3) {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    out.method_token = parts.front();
    out.version_token = parts.back();
    std::string target;
    for (std::size_t p = 1; p + 1 < parts.size(); ++p) {
      if (!target.empty()) target += ' ';
      target += parts[p];
    }
    out.target = target;
  } else {
    add_anomaly(out.anomalies, Anomaly::kRequestLineParts);
    if (!parts.empty()) out.method_token = parts[0];
  }

  if (!out.version_token.empty() && !out.strict_version()) {
    add_anomaly(out.anomalies, Anomaly::kMalformedVersion);
  }
}

RawHeader parse_header_line(const Line& line) {
  RawHeader h;
  h.raw_line = line.text;
  if (line.bare_lf) add_anomaly(h.anomalies, Anomaly::kBareLf);
  if (line.stray_cr) add_anomaly(h.anomalies, Anomaly::kBareCr);
  scan_byte_anomalies(line.text, h.anomalies);

  std::size_t colon = line.text.find(':');
  if (colon == std::string::npos) {
    add_anomaly(h.anomalies, Anomaly::kMissingColon);
    h.name = line.text;
    return h;
  }
  h.name = line.text.substr(0, colon);
  std::string_view value{line.text};
  value.remove_prefix(colon + 1);
  h.value.assign(trim_ows(value));

  if (h.name.empty()) {
    add_anomaly(h.anomalies, Anomaly::kEmptyName);
  } else {
    if (is_ows(h.name.back()) || h.name.back() == '\v' || h.name.back() == '\f') {
      add_anomaly(h.anomalies, Anomaly::kWsBeforeColon);
    }
    std::string_view core = trim_lenient_ws(h.name);
    for (char c : core) {
      if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
        add_anomaly(h.anomalies, Anomaly::kWsInFieldName);
        break;
      }
    }
    if (core.empty()) {
      add_anomaly(h.anomalies, Anomaly::kEmptyName);
    } else if (!is_token(core)) {
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    } else if (core.data() != h.name.data()) {
      add_anomaly(h.anomalies, Anomaly::kNonTokenName);
    }
  }
  for (char c : h.value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') {
      add_anomaly(h.anomalies, Anomaly::kCtlInValue);
      break;
    }
  }
  return h;
}

int parse_status_code(std::string_view token) {
  if (token.size() != 3) return 0;
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + (c - '0');
  }
  return (value >= 100 && value <= 599) ? value : 0;
}

/// The historical RawResponse::find_first: normalized_name() == to_lower(key),
/// allocating on every query.
const RawHeader* find_first_old(const RawResponse& response,
                                std::string_view name) {
  std::string key = to_lower(name);
  for (const auto& h : response.headers) {
    if (h.normalized_name() == key) return &h;
  }
  return nullptr;
}

struct LineRead {
  std::string text;
  std::size_t next = 0;   // offset after terminator
  bool found = false;     // a terminator was found
  bool bare_lf = false;
};

LineRead read_line(std::string_view in, std::size_t pos) {
  LineRead out;
  std::size_t i = pos;
  while (i < in.size() && in[i] != '\n') ++i;
  if (i >= in.size()) {
    out.text.assign(in.substr(pos));
    out.next = in.size();
    return out;
  }
  std::size_t end = i;
  if (end > pos && in[end - 1] == '\r') {
    --end;
  } else {
    out.bare_lf = true;
  }
  out.text.assign(in.substr(pos, end - pos));
  out.next = i + 1;
  out.found = true;
  return out;
}

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

}  // namespace

RawRequest lex_request(std::string_view raw) {
  RawRequest req;
  std::size_t pos = 0;

  // Skip blank lines before the request line (RFC 7230 §3.5).
  Line line = next_line(raw, pos);
  while (line.terminated && line.text.empty() && line.end_offset < raw.size()) {
    pos = line.end_offset;
    line = next_line(raw, pos);
  }

  parse_request_line(line, req.line);
  req.anomalies |= req.line.anomalies;
  if (!line.terminated) {
    add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
    return req;
  }
  pos = line.end_offset;

  bool first_header = true;
  while (true) {
    if (pos >= raw.size()) {
      add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
      return req;
    }
    line = next_line(raw, pos);
    pos = line.end_offset;
    if (line.text.empty()) {
      if (!line.terminated) {
        add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
        return req;
      }
      break;  // end of header block
    }
    if (!line.terminated) {
      add_anomaly(req.anomalies, Anomaly::kTruncatedHeaders);
      // Still record the partial line so models can inspect it.
    }

    const bool starts_with_ws = line.text[0] == ' ' || line.text[0] == '\t';
    if (starts_with_ws && !first_header && !req.headers.empty()) {
      // Obsolete line folding: the line continues the previous field value.
      RawHeader& prev = req.headers.back();
      add_anomaly(prev.anomalies, Anomaly::kObsFold);
      add_anomaly(req.anomalies, Anomaly::kObsFold);
      std::string_view cont = trim_ows(line.text);
      if (!prev.value.empty() && !cont.empty()) prev.value += ' ';
      prev.value.append(cont);
      prev.raw_line += "\\n" + line.text;
      scan_byte_anomalies(line.text, req.anomalies);
      if (!line.terminated) return req;
      continue;
    }

    RawHeader h = parse_header_line(line);
    if (starts_with_ws && first_header) {
      add_anomaly(h.anomalies, Anomaly::kLeadingHeaderWs);
    }
    req.anomalies |= h.anomalies;
    req.headers.push_back(std::move(h));
    first_header = false;
    if (!line.terminated) return req;
  }

  req.after_headers.assign(raw.substr(pos));
  return req;
}

RawResponse lex_response(std::string_view raw) {
  RawResponse out;
  RawRequest as_request = reference::lex_request(raw);
  out.headers = std::move(as_request.headers);
  out.after_headers = std::move(as_request.after_headers);
  out.anomalies = as_request.anomalies;

  const std::string& raw_line = as_request.line.raw;
  std::size_t first_sp = raw_line.find(' ');
  if (first_sp == std::string::npos) return out;
  std::string_view version_token =
      std::string_view(raw_line).substr(0, first_sp);
  if (version_token.size() == 8 && version_token.substr(0, 5) == "HTTP/" &&
      version_token[6] == '.') {
    out.version = Version{version_token[5] - '0', version_token[7] - '0'};
  }
  std::size_t second_sp = raw_line.find(' ', first_sp + 1);
  std::string_view status_token =
      second_sp == std::string::npos
          ? std::string_view(raw_line).substr(first_sp + 1)
          : std::string_view(raw_line).substr(first_sp + 1,
                                              second_sp - first_sp - 1);
  out.status = parse_status_code(status_token);
  if (second_sp != std::string::npos) {
    out.reason = raw_line.substr(second_sp + 1);
  }
  return out;
}

ResponseFraming response_framing(const RawResponse& response,
                                 Method request_method) {
  ResponseFraming framing;
  const int status = response.status;
  if (request_method == Method::kHead || (status >= 100 && status < 200) ||
      status == 204 || status == 304) {
    framing.has_body = false;
    return framing;
  }
  if (const RawHeader* te = find_first_old(response, "transfer-encoding")) {
    auto items = split_list(te->value);
    if (!items.empty() && iequals(items.back(), "chunked")) {
      framing.chunked = true;
      return framing;
    }
  }
  if (const RawHeader* cl = find_first_old(response, "content-length")) {
    framing.content_length =
        parse_content_length_strict(trim_ows(cl->value));
    if (framing.content_length) return framing;
  }
  framing.until_close = true;
  return framing;
}

FramedResponse frame_first_response(std::string_view raw,
                                    Method request_method) {
  FramedResponse out;
  out.head = reference::lex_response(raw);
  if (!out.head.status_line_valid()) return out;
  out.interim = out.head.status >= 100 && out.head.status < 200;

  ResponseFraming framing = reference::response_framing(out.head, request_method);
  const std::string& payload = out.head.after_headers;
  if (!framing.has_body) {
    out.leftover = payload;
    out.complete = true;
    return out;
  }
  if (framing.chunked) {
    ChunkResult r = reference::decode_chunked(payload, ChunkPolicy{});
    if (r.ok) {
      out.body = r.body;
      out.leftover = r.leftover;
      out.complete = true;
    }
    return out;
  }
  if (framing.content_length) {
    if (payload.size() < *framing.content_length) return out;  // incomplete
    out.body = payload.substr(0, static_cast<std::size_t>(
                                     *framing.content_length));
    out.leftover = payload.substr(static_cast<std::size_t>(
        *framing.content_length));
    out.complete = true;
    return out;
  }
  // read-until-close: everything that arrived is the body.
  out.body = payload;
  out.complete = true;
  return out;
}

ChunkResult decode_chunked(std::string_view in, const ChunkPolicy& policy) {
  ChunkResult r;
  std::size_t pos = 0;
  while (true) {
    LineRead line = read_line(in, pos);
    if (!line.found) {
      r.incomplete = true;
      r.error = "input ended inside chunk-size line";
      return r;
    }
    if (line.bare_lf && !policy.allow_bare_lf) {
      r.error = "bare LF in chunk framing";
      return r;
    }
    pos = line.next;

    // Split size token from extension / garbage.
    std::string_view size_line{line.text};
    std::string_view size_token = size_line;
    std::string_view tail;
    std::size_t semi = size_line.find(';');
    if (semi != std::string_view::npos) {
      size_token = size_line.substr(0, semi);
      tail = size_line.substr(semi);
    }
    size_token = trim_ows(size_token);

    std::optional<std::uint64_t> size;
    bool overflowed = false;
    if (policy.wrapping_size || policy.lenient_size_line) {
      // Scan leading hex digits; wrap or truncate per policy.
      std::size_t digits = 0;
      while (digits < size_token.size() && is_hex(size_token[digits])) ++digits;
      if (digits == 0) {
        r.error = "chunk-size has no hex digits";
        return r;
      }
      if (digits < size_token.size() && !policy.lenient_size_line) {
        r.error = "garbage after chunk-size";
        return r;
      }
      unsigned wrap = policy.wrapping_size ? policy.wrap_bits : 64;
      size = parse_chunk_size_wrapping(size_token.substr(0, digits), wrap);
      // Detect that wrapping actually lost information.
      auto strict = parse_chunk_size_strict(size_token.substr(0, digits));
      overflowed = !strict || (size && *strict != *size);
      if (digits < size_token.size()) overflowed = true;
    } else {
      size = parse_chunk_size_strict(size_token);
      if (!size) {
        r.error = "invalid chunk-size";
        return r;
      }
      if (!tail.empty() && !policy.allow_extensions) {
        r.error = "chunk extension not allowed";
        return r;
      }
    }
    if (!size) {
      r.error = "invalid chunk-size";
      return r;
    }
    r.size_overflowed = r.size_overflowed || overflowed;
    if (*size > policy.max_chunk_size) {
      r.error = "chunk-size exceeds implementation limit";
      return r;
    }
    r.chunk_sizes.push_back(*size);

    if (overflowed && policy.wrapping_size && *size != 0) {
      // Repair mode: take the bytes up to the next line terminator as data.
      LineRead data_line = read_line(in, pos);
      if (!data_line.found) {
        r.incomplete = true;
        r.error = "input ended inside repaired chunk-data";
        return r;
      }
      r.body += data_line.text;
      pos = data_line.next;
      continue;
    }

    if (*size == 0) {
      // Trailer section: header lines until an empty line.
      while (true) {
        LineRead trailer = read_line(in, pos);
        if (!trailer.found) {
          r.incomplete = true;
          r.error = "input ended inside trailer section";
          return r;
        }
        if (trailer.bare_lf && !policy.allow_bare_lf) {
          r.error = "bare LF in trailer";
          return r;
        }
        pos = trailer.next;
        if (trailer.text.empty()) break;
      }
      r.ok = true;
      r.leftover.assign(in.substr(pos));
      return r;
    }

    if (pos + *size > in.size()) {
      r.incomplete = true;
      r.error = "input ended inside chunk-data";
      return r;
    }
    std::string_view data = in.substr(pos, static_cast<std::size_t>(*size));
    std::size_t nul_at = data.find('\0');
    if (nul_at != std::string_view::npos) {
      r.saw_nul = true;
      if (policy.reject_nul_in_data) {
        r.error = "NUL byte in chunk-data";
        return r;
      }
      if (policy.nul_terminates_body) {
        r.ok = true;
        r.body.append(data.substr(0, nul_at));
        r.leftover.assign(in.substr(pos + nul_at + 1));
        r.error = "body terminated at NUL byte";
        return r;
      }
    }
    r.body.append(data);
    pos += static_cast<std::size_t>(*size);

    // CRLF after chunk-data.
    bool crlf_ok = false;
    if (pos + 1 < in.size() && in[pos] == '\r' && in[pos + 1] == '\n') {
      pos += 2;
      crlf_ok = true;
    } else if (pos < in.size() && in[pos] == '\n' && policy.allow_bare_lf) {
      pos += 1;
      crlf_ok = true;
    }
    if (!crlf_ok) {
      const bool crlf_may_follow =
          pos >= in.size() || (pos + 1 >= in.size() && in[pos] == '\r');
      if (crlf_may_follow) {
        r.incomplete = true;
        r.error = "input ended before chunk-data CRLF";
        return r;
      }
      if (policy.require_crlf_after_data) {
        r.error = "chunk-data not followed by CRLF";
        return r;
      }
      std::size_t lf = in.find('\n', pos);
      if (lf == std::string_view::npos) {
        r.incomplete = true;
        r.error = "resync failed: no further LF";
        return r;
      }
      pos = lf + 1;
    }
  }
}

}  // namespace hdiff::http::reference
