// Frozen pre-view parser implementations, kept as a differential oracle.
//
// PR 6 replaced the owned per-field lexers with the zero-copy view parser
// (view.h): `lex_request` / `lex_response` / `decode_chunked` are now thin
// materializing wrappers over views.  This header preserves the historical
// implementations *verbatim* (allocating per line, per header, per chunk)
// so the repo can differentially test its own parser the way it
// differentially tests HTTP stacks: the parity suite
// (tests/http/view_parity_test.cpp) and `hdiff selftest --views` fuzz raw
// messages through both and assert field-identical output.
//
// Do not "fix" or modernize these functions — their value is that they do
// not change.  They are not built into any hot path.
#pragma once

#include <string_view>

#include "http/chunked.h"
#include "http/message.h"
#include "http/response.h"

namespace hdiff::http::reference {

/// The pre-view owned request lexer, byte-for-byte.
RawRequest lex_request(std::string_view raw);

/// The pre-view owned response lexer.
RawResponse lex_response(std::string_view raw);

/// The pre-view response framing decision (allocating split_list walk).
ResponseFraming response_framing(const RawResponse& response,
                                 Method request_method);

/// The pre-view first-response framer.
FramedResponse frame_first_response(std::string_view raw,
                                    Method request_method);

/// The pre-view chunked decoder (allocating line reads, string body).
ChunkResult decode_chunked(std::string_view in, const ChunkPolicy& policy);

}  // namespace hdiff::http::reference
