// Descriptive request lexer.
//
// `lex_request` splits raw connection bytes into a RawRequest.  It is
// intentionally *never* the component that rejects a message: every syntax
// irregularity is recorded as an Anomaly flag on the affected element and on
// the request as a whole, and the raw bytes are preserved.  The per-product
// behaviour models (src/impls) then map anomalies to accept / repair / reject
// decisions according to their ParsePolicy — which is exactly where HTTP
// implementations in the wild diverge.
#pragma once

#include <string_view>

#include "http/message.h"

namespace hdiff::http {

/// Lex `raw` into a RawRequest.  Leading empty lines before the request line
/// are skipped (RFC 7230 §3.5 allows a recipient to ignore them).  The header
/// block ends at the first empty line; all bytes after it are placed verbatim
/// into `after_headers`.  If the input ends before the empty line, the
/// kTruncatedHeaders anomaly is set and `after_headers` is empty.
RawRequest lex_request(std::string_view raw);

}  // namespace hdiff::http
