#include "http/serialize.h"

#include "http/chunked.h"
#include "http/header_util.h"

namespace hdiff::http {

RequestSpec& RequestSpec::add(std::string_view name, std::string_view value) {
  headers.push_back(HeaderSpec{std::string(name), std::string(value)});
  return *this;
}

RequestSpec& RequestSpec::add(HeaderSpec h) {
  headers.push_back(std::move(h));
  return *this;
}

RequestSpec& RequestSpec::set(std::string_view name, std::string_view value) {
  for (auto& h : headers) {
    if (iequals(h.name, name)) {
      h.value.assign(value);
      return *this;
    }
  }
  return add(name, value);
}

RequestSpec& RequestSpec::remove(std::string_view name) {
  std::erase_if(headers,
                [&](const HeaderSpec& h) { return iequals(h.name, name); });
  return *this;
}

std::optional<std::string> RequestSpec::get(std::string_view name) const {
  for (const auto& h : headers) {
    if (iequals(h.name, name)) return h.value;
  }
  return std::nullopt;
}

std::string RequestSpec::to_wire() const {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += sep1;
  out += target;
  if (!version.empty()) {
    out += sep2;
    out += version;
  }
  out += line_terminator;
  for (const auto& h : headers) {
    out += h.name;
    out += h.separator;
    out += h.value;
    out += h.terminator;
  }
  out += headers_terminator;
  out += body;
  return out;
}

RequestSpec make_get(std::string_view host, std::string_view target) {
  RequestSpec r;
  r.target.assign(target);
  r.add("Host", host);
  return r;
}

RequestSpec make_post(std::string_view host, std::string_view target,
                      std::string_view body) {
  RequestSpec r;
  r.method = "POST";
  r.target.assign(target);
  r.add("Host", host);
  r.add("Content-Length", std::to_string(body.size()));
  r.body.assign(body);
  return r;
}

RequestSpec make_chunked_post(std::string_view host, std::string_view target,
                              std::string_view body) {
  RequestSpec r;
  r.method = "POST";
  r.target.assign(target);
  r.add("Host", host);
  r.add("Transfer-Encoding", "chunked");
  r.body = encode_chunked(body);
  return r;
}

}  // namespace hdiff::http
