// HTTP/1.x response parsing and construction.
//
// The response path has its own semantic gaps: interim 1xx responses that
// some intermediaries do not expect, bodyless statuses (1xx/204/304) and
// HEAD responses whose Content-Length must not be consumed, and framing
// rules mirroring the request side.  This module provides a descriptive
// response lexer plus a policy-light framing function; the per-product
// response behaviours live in impls (ParsePolicy response knobs).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"

namespace hdiff::http {

/// A lexed response: status line + header block + trailing bytes.
struct RawResponse {
  Version version{1, 1};
  int status = 0;                 ///< 0 when the status line is unparseable
  std::string reason;
  std::vector<RawHeader> headers;
  std::string after_headers;
  AnomalySet anomalies = 0;

  const RawHeader* find_first(std::string_view name) const;
  bool status_line_valid() const noexcept { return status != 0; }
};

/// Lex one response from raw connection bytes (descriptive; never rejects).
RawResponse lex_response(std::string_view raw);

/// Framing decision for a response body (RFC 7230 §3.3.3 response rules).
struct ResponseFraming {
  bool has_body = true;
  bool chunked = false;
  std::optional<std::uint64_t> content_length;
  bool until_close = false;
};

/// Compute the framing for a response to `request_method` with status
/// `status`: 1xx/204/304 and HEAD responses carry no body; otherwise TE
/// chunked, then Content-Length, then read-until-close.
ResponseFraming response_framing(const RawResponse& response,
                                 Method request_method);

/// One fully-framed response extracted from a connection stream.
struct FramedResponse {
  RawResponse head;
  std::string body;       ///< decoded body bytes
  std::string leftover;   ///< bytes after this response (next response)
  bool complete = false;  ///< false when more bytes are required
  bool interim = false;   ///< 1xx informational response
};

/// Split the first response (interim responses count as standalone units)
/// off a connection stream.
FramedResponse frame_first_response(std::string_view raw,
                                    Method request_method);

/// Build a minimal response ("HTTP/1.1 <status> <reason>" + CL framing).
std::string build_response(int status, std::string_view body,
                           std::string_view extra_headers = {});

}  // namespace hdiff::http
