#include "http/message.h"

#include "http/header_util.h"

namespace hdiff::http {

Method method_from_token(std::string_view token) noexcept {
  if (token == "GET") return Method::kGet;
  if (token == "HEAD") return Method::kHead;
  if (token == "POST") return Method::kPost;
  if (token == "PUT") return Method::kPut;
  if (token == "DELETE") return Method::kDelete;
  if (token == "OPTIONS") return Method::kOptions;
  if (token == "TRACE") return Method::kTrace;
  if (token == "CONNECT") return Method::kConnect;
  return Method::kOther;
}

std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kOptions: return "OPTIONS";
    case Method::kTrace: return "TRACE";
    case Method::kConnect: return "CONNECT";
    case Method::kOther: return "OTHER";
  }
  return "OTHER";
}

std::string to_string(Version v) {
  return "HTTP/" + std::to_string(v.major) + "." + std::to_string(v.minor);
}

std::string describe_anomalies(AnomalySet set) {
  struct Entry {
    Anomaly flag;
    const char* name;
  };
  static constexpr Entry kEntries[] = {
      {Anomaly::kBareLf, "bare-lf"},
      {Anomaly::kBareCr, "bare-cr"},
      {Anomaly::kWsBeforeColon, "ws-before-colon"},
      {Anomaly::kWsInFieldName, "ws-in-field-name"},
      {Anomaly::kObsFold, "obs-fold"},
      {Anomaly::kLeadingHeaderWs, "leading-header-ws"},
      {Anomaly::kCtlInValue, "ctl-in-value"},
      {Anomaly::kNonTokenName, "non-token-name"},
      {Anomaly::kMissingColon, "missing-colon"},
      {Anomaly::kEmptyName, "empty-name"},
      {Anomaly::kExtraRequestLineWs, "extra-request-line-ws"},
      {Anomaly::kRequestLineParts, "request-line-parts"},
      {Anomaly::kNoVersion, "no-version"},
      {Anomaly::kMalformedVersion, "malformed-version"},
      {Anomaly::kTruncatedHeaders, "truncated-headers"},
      {Anomaly::kNulByte, "nul-byte"},
      {Anomaly::kHighBitChar, "high-bit-char"},
  };
  std::string out;
  for (const auto& e : kEntries) {
    if (has_anomaly(set, e.flag)) {
      if (!out.empty()) out += '|';
      out += e.name;
    }
  }
  if (out.empty()) out = "none";
  return out;
}

std::optional<Version> parse_strict_version(std::string_view v) noexcept {
  // HTTP-version = "HTTP" "/" DIGIT "." DIGIT  (case-sensitive HTTP-name)
  if (v.size() != 8) return std::nullopt;
  if (v.substr(0, 5) != "HTTP/") return std::nullopt;
  if (v[5] < '0' || v[5] > '9' || v[6] != '.' || v[7] < '0' || v[7] > '9') {
    return std::nullopt;
  }
  return Version{v[5] - '0', v[7] - '0'};
}

std::string RawHeader::normalized_name() const {
  return to_lower(trim_lenient_ws(name));
}

std::optional<Version> RequestLine::strict_version() const {
  return parse_strict_version(version_token);
}

std::vector<const RawHeader*> RawRequest::find_all(std::string_view name) const {
  std::vector<const RawHeader*> out;
  for (const auto& h : headers) {
    if (header_name_is(h.name, name)) out.push_back(&h);
  }
  return out;
}

const RawHeader* RawRequest::find_first(std::string_view name) const {
  for (const auto& h : headers) {
    if (header_name_is(h.name, name)) return &h;
  }
  return nullptr;
}

std::size_t RawRequest::count(std::string_view name) const {
  std::size_t n = 0;
  for (const auto& h : headers) {
    if (header_name_is(h.name, name)) ++n;
  }
  return n;
}

}  // namespace hdiff::http
