// Chunked transfer-coding decoder (RFC 7230 §4.1) with pluggable laxness.
//
// Chunk parsing is one of the richest sources of request-smuggling gaps:
// implementations differ on hex-overflow handling, on whether chunk data must
// be followed by CRLF, on chunk extensions, and on garbage bytes in the size
// line.  `ChunkPolicy` captures those dials; each product model owns one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hdiff::http {

/// Dials controlling how lenient the decoder is.
struct ChunkPolicy {
  /// Wrap the chunk-size modulo 2^wrap_bits instead of rejecting overflow
  /// (models C parsers accumulating into a fixed-width integer).
  bool wrapping_size = false;
  unsigned wrap_bits = 32;
  /// Accept chunk extensions (";token=value") after the size.
  bool allow_extensions = true;
  /// Accept arbitrary trailing garbage on the size line even when extensions
  /// are disabled or malformed (scan-first-hex-digits behaviour).
  bool lenient_size_line = false;
  /// Require the CRLF that must follow chunk-data; when false, the decoder
  /// resynchronizes by scanning for the next CRLF (data-repair behaviour).
  bool require_crlf_after_data = true;
  /// Treat a NUL byte inside chunk-data as a fatal error.
  bool reject_nul_in_data = false;
  /// C-string-style handling: a NUL byte inside chunk-data terminates the
  /// body; everything after it is treated as the next message (a real
  /// desynchronization primitive — Table II "NULL in chunk-data").
  bool nul_terminates_body = false;
  /// Accept bare-LF line terminators inside the chunked framing.
  bool allow_bare_lf = false;
  /// Upper bound on a single chunk size this implementation will buffer.
  std::uint64_t max_chunk_size = 1ull << 30;
};

/// Decoder outcome.  `ok==false` with `incomplete==true` means the decoder
/// consumed the whole input but needs more bytes (a real server would block
/// — precisely the hang/smuggle primitive); `ok==false` otherwise means the
/// framing was judged invalid (a real server answers 400 and closes).
struct ChunkResult {
  bool ok = false;
  bool incomplete = false;
  bool size_overflowed = false;  ///< wrapping or digit-truncation occurred
  bool saw_nul = false;          ///< NUL byte observed inside chunk-data
  std::string body;              ///< concatenated decoded chunk-data
  std::string leftover;          ///< bytes after the terminating sequence
  std::string error;             ///< human-readable failure reason
  std::vector<std::uint64_t> chunk_sizes;  ///< as interpreted, in order
};

ChunkResult decode_chunked(std::string_view in, const ChunkPolicy& policy);

/// Allocation-free scan outcome: chunk-data is reported as (offset, length)
/// ranges into the scanned input instead of a concatenated string, and the
/// error is a view of a static literal.  `decode_chunked` is a materializing
/// wrapper over `scan_chunked`; hot paths (response framing on views, the
/// event-loop stream prober) consume the scan directly.  A reused ChunkScan
/// re-scans with zero allocations once its vectors have warmed up.
struct ChunkScan {
  bool ok = false;
  bool incomplete = false;
  bool size_overflowed = false;
  bool saw_nul = false;
  /// Offset of the first byte after the terminating sequence; npos when the
  /// scan did not complete a message (leftover undefined).
  std::size_t leftover_begin = std::string_view::npos;
  std::string_view error;  ///< static literal; empty on clean success
  std::vector<std::pair<std::size_t, std::size_t>> data;  ///< body ranges
  std::vector<std::uint64_t> chunk_sizes;  ///< as interpreted, in order

  /// Total decoded body length across all ranges.
  std::size_t body_size() const noexcept;

  /// Forget the previous scan but keep vector capacity.
  void reset() noexcept;
};

/// Scan `in` as a chunked body under `policy`, reusing `out`'s capacity.
/// Field-for-field equivalent to decode_chunked (same flags, same error
/// strings, same chunk_sizes); `out` borrows `in` only via offsets, so the
/// result stays valid as long as the caller interprets the ranges against
/// the same bytes.
void scan_chunked(std::string_view in, const ChunkPolicy& policy,
                  ChunkScan& out);

/// Re-serialize a decoded body as a single well-formed chunked sequence
/// ("<hex>\r\n<data>\r\n0\r\n\r\n"), as a repairing proxy would emit.
std::string encode_chunked(std::string_view body);

}  // namespace hdiff::http
