// RFC 7235 (Authentication) excerpt.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7235_text() {
  return R"RFC(
RFC 7235                 HTTP/1.1 Authentication               June 2014

2.1.  Challenge and Response

   HTTP provides a simple challenge-response authentication framework
   that can be used by a server to challenge a client request and by a
   client to provide authentication information.

     auth-scheme    = token

     auth-param     = token BWS "=" BWS ( token / quoted-string )

     token68        = 1*( ALPHA / DIGIT / "-" / "." / "_" / "~" / "+" / "/" ) *"="

     challenge      = auth-scheme [ 1*SP ( token68 / #auth-param ) ]

     credentials    = auth-scheme [ 1*SP ( token68 / #auth-param ) ]

   Upon receipt of a request for a protected resource that omits
   credentials, contains invalid credentials (e.g., a bad password) or
   partial credentials (e.g., when the authentication scheme requires
   more than one round trip), an origin server SHOULD send a 401
   (Unauthorized) response that contains a WWW-Authenticate header
   field with at least one (possibly new) challenge applicable to the
   requested resource.

3.1.  401 Unauthorized

   The 401 (Unauthorized) status code indicates that the request has
   not been applied because it lacks valid authentication credentials
   for the target resource.  The server generating a 401 response MUST
   send a WWW-Authenticate header field containing at least one
   challenge applicable to the target resource.

     WWW-Authenticate = 1#challenge

3.2.  407 Proxy Authentication Required

   The 407 (Proxy Authentication Required) status code is similar to
   401 (Unauthorized), but it indicates that the client needs to
   authenticate itself in order to use a proxy.  The proxy MUST send a
   Proxy-Authenticate header field containing a challenge applicable to
   that proxy for the target resource.

     Proxy-Authenticate = 1#challenge

4.2.  Authorization

   The "Authorization" header field allows a user agent to authenticate
   itself with an origin server -- usually, but not necessarily, after
   receiving a 401 (Unauthorized) response.  Its value consists of
   credentials containing the authentication information of the user
   agent for the realm of the resource being requested.

     Authorization = credentials

   A proxy forwarding a request MUST NOT modify any Authorization
   header fields in that request.

4.4.  Proxy-Authorization

   The "Proxy-Authorization" header field allows the client to identify
   itself (or its user) to a proxy that requires authentication.  Its
   value consists of credentials containing the authentication
   information of the client for the proxy and/or realm of the resource
   being requested.

     Proxy-Authorization = credentials

Fielding & Reschke           Standards Track                   [Page 11]
)RFC";
}

}  // namespace hdiff::corpus
