// Embedded RFC corpus.
//
// HDiff's Documentation Analyzer consumes the HTTP/1.1 core specifications
// (RFC 7230–7235) plus the documents they reference for grammar (RFC 3986
// URI syntax, RFC 5234 core ABNF).  This registry embeds genuine excerpts of
// those documents — the requirement prose and the ABNF grammar blocks, in
// original RFC page formatting — so the full analyzer pipeline (cleaning,
// sentence splitting, SR finding, ABNF extraction/adaptation) runs
// end-to-end offline.  Corpus *size* differs from the full RFCs; experiment
// E1 reports our counts next to the paper's (see DESIGN.md §1).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace hdiff::corpus {

struct Document {
  std::string_view name;   ///< lookup key, e.g. "rfc7230"
  std::string_view title;
  std::string_view text;   ///< RFC-formatted excerpt
};

/// All embedded documents, in ascending RFC order.
std::span<const Document> all_documents();

/// The HTTP/1.1 core six (7230..7235), the analyzer's default input set.
std::vector<std::string_view> http_core_documents();

/// Find by name ("rfc7230"); nullptr if absent.  Lookup is case-insensitive.
const Document* find_document(std::string_view name);

/// Word/sentence size of one document or of the whole corpus.
struct CorpusSize {
  std::size_t words = 0;
  std::size_t valid_sentences = 0;  ///< sentences with >= 3 words
};

CorpusSize measure(const Document& doc);
CorpusSize measure_all();

}  // namespace hdiff::corpus
