// RFC 7231 (HTTP/1.1 Semantics and Content) excerpt: method semantics,
// the Expect mechanism, and response-code requirements exercised by the
// CPDoS and fat-GET experiments.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7231_text() {
  return R"RFC(
RFC 7231             HTTP/1.1 Semantics and Content            June 2014

4.  Request Methods

   The request method token is the primary source of request semantics;
   it indicates the purpose for which the client has made this request
   and what is expected by the client as a successful result.

     method = token

   The method token is case-sensitive because it might be used as a
   gateway to object-based systems with case-sensitive method names.
   By convention, standardized methods are defined in all-uppercase
   US-ASCII letters.

   When a request method is received that is unrecognized or not
   implemented by an origin server, the origin server SHOULD respond
   with the 501 (Not Implemented) status code.  When a request method
   is received that is known by an origin server but not allowed for
   the target resource, the origin server SHOULD respond with the 405
   (Method Not Allowed) status code.

4.3.1.  GET

   The GET method requests transfer of a current selected
   representation for the target resource.  GET is the primary
   mechanism of information retrieval and the focus of almost all
   performance optimizations.

   A payload within a GET request message has no defined semantics;
   sending a payload body on a GET request might cause some existing
   implementations to reject the request.

4.3.2.  HEAD

   The HEAD method is identical to GET except that the server MUST NOT
   send a message body in the response (i.e., the response terminates
   at the end of the header section).

   A payload within a HEAD request message has no defined semantics;
   sending a payload body on a HEAD request might cause some existing
   implementations to reject the request.

4.3.6.  CONNECT

   The CONNECT method requests that the recipient establish a tunnel to
   the destination origin server identified by the request-target and,
   if successful, thereafter restrict its behavior to blind forwarding
   of packets, in both directions, until the tunnel is closed.

   A payload within a CONNECT request message has no defined semantics;
   sending a payload body on a CONNECT request might cause some
   existing implementations to reject the request.

   A client MUST send the authority form of request-target with a
   CONNECT request.

Fielding & Reschke           Standards Track                   [Page 30]

RFC 7231             HTTP/1.1 Semantics and Content            June 2014

5.1.1.  Expect

   The "Expect" header field in a request indicates a certain set of
   behaviors (expectations) that need to be supported by the server in
   order to properly handle this request.  The only such expectation
   defined by this specification is 100-continue.

     Expect = "100-continue"

   The Expect field-value is case-insensitive.

   A server that receives an Expect field-value other than 100-continue
   MAY respond with a 417 (Expectation Failed) status code to indicate
   that the unexpected expectation cannot be met.

   A client MUST NOT generate a 100-continue expectation in a request
   that does not include a message body.

   A server that receives a 100-continue expectation in an HTTP/1.0
   request MUST ignore that expectation.

   A server MUST NOT send a 100 (Continue) response if the request
   message does not include an Expect header field with the
   100-continue expectation.  A server that responds with a final
   status code before reading the entire message body SHOULD indicate
   in that response whether it intends to close the connection or
   continue reading and discarding the request message.

   A proxy MUST forward a received Expect header field if the request
   was received with an HTTP/1.1 (or later) version and contains a
   100-continue expectation.  A proxy MUST NOT forward a 100-continue
   expectation if the request was received from an HTTP/1.0 (or
   earlier) client.

5.1.2.  Max-Forwards

   The "Max-Forwards" header field provides a mechanism with the TRACE
   and OPTIONS request methods to limit the number of times that the
   request is forwarded by proxies.

     Max-Forwards = 1*DIGIT

   Each recipient of a TRACE or OPTIONS request containing a
   Max-Forwards header field MUST check and update its value prior to
   forwarding the request.  If the received value is zero (0), the
   recipient MUST NOT forward the request; instead, the recipient MUST
   respond as the final recipient.

4.3.7.  OPTIONS

   The OPTIONS method requests information about the communication
   options available for the target resource, at either the origin
   server or an intervening intermediary.

   A client that generates an OPTIONS request containing a payload body
   MUST send a valid Content-Type header field describing the
   representation media type.

   A server generating a successful response to OPTIONS SHOULD send any
   header fields that might indicate optional features implemented by
   the server and applicable to the target resource, such as Allow.

4.3.8.  TRACE

   The TRACE method requests a remote, application-level loop-back of
   the request message.  The final recipient of the request SHOULD
   reflect the message received, excluding some fields described below,
   back to the client as the message body of a 200 (OK) response.

   A client MUST NOT generate header fields in a TRACE request
   containing sensitive data that might be disclosed by the response.
   A client MUST NOT send a message body in a TRACE request.

7.4.1.  Allow

   The "Allow" header field lists the set of methods advertised as
   supported by the target resource.  The purpose of this field is
   strictly to inform the recipient of valid request methods associated
   with the resource.

     Allow = #method

   A server MUST generate an Allow field in a 405 (Method Not Allowed)
   response and MAY do so in any other response.

7.4.2.  Server

   The "Server" header field contains information about the software
   used by the origin server to handle the request.

     Server = product *( RWS ( product / comment ) )

     product         = token [ "/" product-version ]
     product-version = token

   An origin server MAY generate a Server field in its responses.  An
   origin server SHOULD NOT generate a Server field containing
   needlessly fine-grained detail, since it becomes more vulnerable to
   attacks against software that is known to contain security holes.

5.5.3.  User-Agent

   The "User-Agent" header field contains information about the user
   agent originating the request.

     User-Agent = product *( RWS ( product / comment ) )

   A user agent SHOULD send a User-Agent field in each request unless
   specifically configured not to do so.

6.4.4.  303 See Other

   The 303 (See Other) status code indicates that the server is
   redirecting the user agent to a different resource, as indicated by
   a URI in the Location header field, which is intended to provide an
   indirect response to the original request.

   A 303 response to a GET request indicates that the origin server
   does not have a representation of the target resource that can be
   transferred over HTTP.

6.5.1.  400 Bad Request

   The 400 (Bad Request) status code indicates that the server cannot
   or will not process the request due to something that is perceived
   to be a client error (e.g., malformed request syntax, invalid
   request message framing, or deceptive request routing).

6.6.6.  505 HTTP Version Not Supported

   The 505 (HTTP Version Not Supported) status code indicates that the
   server does not support, or refuses to support, the major version of
   HTTP that was used in the request message.  The server is indicating
   that it is unable or unwilling to complete the request using the
   same major version as the client other than with this error message.

7.1.2.  Location

   The "Location" header field is used in some responses to refer to a
   specific resource in relation to the response.

     Location = URI-reference

     URI-reference = <URI-reference, see [RFC3986], Section 4.1>

Fielding & Reschke           Standards Track                   [Page 68]
)RFC";
}

}  // namespace hdiff::corpus
