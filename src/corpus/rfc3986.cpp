// RFC 3986 (URI Generic Syntax) excerpt: the authority/host grammar that
// RFC 7230 imports via prose reference for uri-host.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc3986_text() {
  return R"RFC(
RFC 3986                   URI Generic Syntax               January 2005

3.  Syntax Components

   The generic URI syntax consists of a hierarchical sequence of
   components referred to as the scheme, authority, path, query, and
   fragment.

      URI           = scheme ":" hier-part [ "?" query ] [ "#" fragment ]

      hier-part     = "//" authority path-abempty
                    / path-absolute
                    / path-rootless
                    / path-empty

   The scheme and path components are required, though the path may be
   empty (no characters).  When authority is present, the path must
   either be empty or begin with a slash ("/") character.

3.1.  Scheme

   Each URI begins with a scheme name that refers to a specification
   for assigning identifiers within that scheme.  Scheme names consist
   of a sequence of characters beginning with a letter and followed by
   any combination of letters, digits, plus ("+"), period ("."), or
   hyphen ("-").  An implementation should accept uppercase letters as
   equivalent to lowercase in scheme names but should only produce
   lowercase scheme names for consistency.

      scheme        = ALPHA *( ALPHA / DIGIT / "+" / "-" / "." )

3.2.  Authority

   Many URI schemes include a hierarchical element for a naming
   authority.  The authority component is preceded by a double slash
   ("//") and is terminated by the next slash ("/"), question mark
   ("?"), or number sign ("#") character, or by the end of the URI.

      authority     = [ userinfo "@" ] host [ ":" port ]

3.2.1.  User Information

   The userinfo subcomponent may consist of a user name and,
   optionally, scheme-specific information about how to gain
   authorization to access the resource.  Use of the format
   "user:password" in the userinfo field is deprecated.  Applications
   SHOULD NOT render as clear text any data after the first colon
   character found within a userinfo subcomponent.

      userinfo      = *( unreserved / pct-encoded / sub-delims / ":" )

3.2.2.  Host

   The host subcomponent of authority is identified by an IP literal
   encapsulated within square brackets, an IPv4 address in dotted-
   decimal form, or a registered name.  The host subcomponent is case-
   insensitive.  A registered name intended for lookup in the DNS uses
   the syntax defined in Section 3.5 of RFC 1034.  Such a name consists
   of a sequence of domain labels separated by ".", each domain label
   starting and ending with an alphanumeric character.

      host          = IP-literal / IPv4address / reg-name

      IP-literal    = "[" ( IPv6address / IPvFuture  ) "]"

      IPvFuture     = "v" 1*HEXDIG "." 1*( unreserved / sub-delims / ":" )

      IPv6address   = 6( h16 ":" ) ls32
                    / "::" 5( h16 ":" ) ls32
                    / [ h16 ] "::" 4( h16 ":" ) ls32

      h16           = 1*4HEXDIG
      ls32          = ( h16 ":" h16 ) / IPv4address

      IPv4address   = dec-octet "." dec-octet "." dec-octet "." dec-octet

      dec-octet     = DIGIT                 ; 0-9
                    / %x31-39 DIGIT         ; 10-99
                    / "1" 2DIGIT            ; 100-199
                    / "2" %x30-34 DIGIT     ; 200-249
                    / "25" %x30-35          ; 250-255

      reg-name      = *( unreserved / pct-encoded / sub-delims )

3.2.3.  Port

   The port subcomponent of authority is designated by an optional port
   number in decimal following the host and delimited from it by a
   single colon (":") character.

      port          = *DIGIT

   A scheme may define a default port.  URI producers and normalizers
   SHOULD omit the port component and its ":" delimiter if port is
   empty or if its value would be the same as that of the scheme's
   default.

Berners-Lee, et al.         Standards Track                    [Page 22]

RFC 3986                   URI Generic Syntax               January 2005

3.3.  Path

   The path component contains data, usually organized in hierarchical
   form, that, along with data in the non-hierarchical query component,
   serves to identify a resource within the scope of the URI's scheme
   and naming authority.

      path-abempty  = *( "/" segment )
      path-absolute = "/" [ segment-nz *( "/" segment ) ]
      path-rootless = segment-nz *( "/" segment )
      path-empty    = ""

      segment       = *pchar
      segment-nz    = 1*pchar

      pchar         = unreserved / pct-encoded / sub-delims / ":" / "@"

3.4.  Query

   The query component contains non-hierarchical data that, along with
   data in the path component, serves to identify a resource.

      query         = *( pchar / "/" / "?" )

4.3.  Absolute URI

   Some protocol elements allow only the absolute form of a URI without
   a fragment identifier.  For example, defining a base URI for later
   use by relative references calls for an absolute-URI syntax rule
   that does not allow a fragment.

      absolute-URI  = scheme ":" hier-part [ "?" query ]

2.1.  Percent-Encoding

   A percent-encoding mechanism is used to represent a data octet in a
   component when that octet's corresponding character is outside the
   allowed set or is being used as a delimiter of, or within, the
   component.

      pct-encoded   = "%" HEXDIG HEXDIG

2.2.  Reserved Characters

   URIs include components and subcomponents that are delimited by
   characters in the "reserved" set.  These characters are called
   "reserved" because they may (or may not) be defined as delimiters by
   the generic syntax.  URI producing applications SHOULD percent-
   encode data octets that correspond to characters in the reserved set
   unless these characters are specifically allowed by the URI scheme.

      reserved      = gen-delims / sub-delims

      gen-delims    = ":" / "/" / "?" / "#" / "[" / "]" / "@"

      sub-delims    = "!" / "$" / "&" / "'" / "(" / ")"
                    / "*" / "+" / "," / ";" / "="

2.3.  Unreserved Characters

   Characters that are allowed in a URI but do not have a reserved
   purpose are called unreserved.  These include uppercase and
   lowercase letters, decimal digits, hyphen, period, underscore, and
   tilde.

      unreserved    = ALPHA / DIGIT / "-" / "." / "_" / "~"

Berners-Lee, et al.         Standards Track                    [Page 23]
)RFC";
}

}  // namespace hdiff::corpus
