// RFC 7234 (Caching) excerpt: storage and reuse constraints behind the
// CPDoS detection model.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7234_text() {
  return R"RFC(
RFC 7234                     HTTP/1.1 Caching                  June 2014

2.  Overview of Cache Operation

   Proper cache operation preserves the semantics of HTTP transfers
   while eliminating the transfer of information already held in the
   cache.  Although caching is an entirely OPTIONAL feature of HTTP, it
   can be assumed that reusing a cached response is desirable and that
   such reuse is the default behavior when no requirement or local
   configuration prevents it.

3.  Storing Responses in Caches

   A cache MUST NOT store a response to any request, unless the request
   method is understood by the cache and defined as being cacheable,
   and the response status code is understood by the cache, and the
   "no-store" cache directive does not appear in request or response
   header fields, and the "private" response directive does not appear
   in the response if the cache is shared, and the Authorization header
   field does not appear in the request if the cache is shared, unless
   the response explicitly allows it.

   A cache MUST NOT store a response to any request that it does not
   understand.  Note that, in normal operation, some caches will not
   store a response that has neither a cache validator nor an explicit
   expiration time, as such responses are not usually useful to store.
   However, caches are not prohibited from storing such responses.

   A response received with a status code of 200, 203, 204, 206, 300,
   301, 404, 405, 410, 414, or 501 can be stored by a cache and used in
   reply to a subsequent request, subject to the expiration mechanism,
   unless otherwise indicated by a cache directive.

4.  Constructing Responses from Caches

   When presented with a request, a cache MUST NOT reuse a stored
   response, unless the presented effective request URI and that of the
   stored response match, and the request method associated with the
   stored response allows it to be used for the presented request, and
   selecting header fields nominated by the stored response (if any)
   match those presented, and the presented request does not contain
   the no-cache pragma, nor the no-cache cache directive, unless the
   stored response is successfully validated, and the stored response
   is either fresh, allowed to be served stale, or successfully
   validated.

   When a stored response is used to satisfy a request without
   validation, a cache MUST generate an Age header field, replacing any
   present in the response with a value equal to the stored response's
   current_age.

4.4.  Invalidation

   Because unsafe request methods have the potential for changing state
   on the origin server, intervening caches can use them to keep their
   contents up to date.

   A cache MUST invalidate the effective Request URI as well as the URI
   in the Location and Content-Location response header fields (if
   present) when a non-error status code is received in response to an
   unsafe request method.  However, a cache MUST NOT invalidate a URI
   from a Location or Content-Location response header field if the
   host part of that URI differs from the host part in the effective
   request URI.  This helps prevent denial-of-service attacks.

   A cache MUST invalidate the effective request URI when it receives a
   non-error response to a request with a method whose safety is
   unknown.

4.2.  Freshness

   A fresh response is one whose age has not yet exceeded its freshness
   lifetime.  Conversely, a stale response is one where it has.  The
   calculation to determine if a response is fresh is:

     response_is_fresh = (freshness_lifetime > current_age)

   A cache MUST NOT reuse a stale response without successful
   validation unless serving stale responses is explicitly allowed.  A
   cache MUST NOT generate a stale response if it is prohibited by an
   explicit in-protocol directive (e.g., by a "no-store" or "no-cache"
   cache directive, a "must-revalidate" cache-response-directive, or an
   applicable "s-maxage" or "proxy-revalidate" cache-response-directive).

   When a response is "stale", the cache SHOULD NOT use it without
   first validating it with the origin server.

4.2.3.  Age

   The "Age" header field conveys the sender's estimate of the amount
   of time since the response was generated or successfully validated
   at the origin server.

     Age = delta-seconds

     delta-seconds = 1*DIGIT

   A recipient with a clock that receives a response with an invalid
   Age field value MUST interpret the response as stale.

5.3.  Expires

   The "Expires" header field gives the date/time after which the
   response is considered stale.

     Expires = HTTP-date

   A cache recipient MUST interpret invalid date formats, especially
   the value "0", as representing a time in the past (i.e., "already
   expired").

5.2.  Cache-Control

   The "Cache-Control" header field is used to specify directives for
   caches along the request/response chain.  Such cache directives are
   unidirectional in that the presence of a directive in a request does
   not imply that the same directive is to be given in the response.

     Cache-Control   = 1#cache-directive

     cache-directive = token [ "=" ( token / quoted-string ) ]

   A cache MUST obey the requirements of the Cache-Control directives
   defined in this section.  A proxy, whether or not it implements a
   cache, MUST pass cache directives through in forwarded messages,
   regardless of their significance to that application, since the
   directives might be applicable to all recipients along the
   request/response chain.  It is not possible to target a directive to
   a specific cache.

5.4.  Pragma

   The "Pragma" header field allows backwards compatibility with
   HTTP/1.0 caches, so that clients can specify a "no-cache" request
   that they will understand (as Cache-Control was not defined until
   HTTP/1.1).

     Pragma           = 1#pragma-directive

     pragma-directive = "no-cache" / extension-pragma

     extension-pragma = token [ "=" ( token / quoted-string ) ]

   When the Cache-Control header field is also present and understood
   in a request, Pragma is ignored.

Fielding, et al.            Standards Track                    [Page 30]
)RFC";
}

}  // namespace hdiff::corpus
