// Per-document excerpt accessors; registry.cpp assembles them.
#pragma once

#include <string_view>

namespace hdiff::corpus {

std::string_view rfc3986_text();
std::string_view rfc5234_text();
std::string_view rfc7230_text();
std::string_view rfc7231_text();
std::string_view rfc7232_text();
std::string_view rfc7233_text();
std::string_view rfc7234_text();
std::string_view rfc7235_text();

}  // namespace hdiff::corpus
