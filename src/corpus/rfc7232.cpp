// RFC 7232 (Conditional Requests) excerpt.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7232_text() {
  return R"RFC(
RFC 7232                  HTTP/1.1 Conditional Requests        June 2014

2.2.  Last-Modified

   The "Last-Modified" header field in a response provides a timestamp
   indicating the date and time at which the origin server believes the
   selected representation was last modified, as determined at the
   conclusion of handling the request.

     Last-Modified = HTTP-date

     HTTP-date = <HTTP-date, see [RFC7231], Section 7.1.1.1>

   An origin server SHOULD send Last-Modified for any selected
   representation for which a last modification date can be reasonably
   and consistently determined.

2.3.  ETag

   The "ETag" header field in a response provides the current entity-
   tag for the selected representation, as determined at the conclusion
   of handling the request.

     ETag       = entity-tag

     entity-tag = [ weak ] opaque-tag

     weak       = %x57.2F ; "W/", case-sensitive

     opaque-tag = DQUOTE *etagc DQUOTE

     etagc      = %x21 / %x23-7E / obs-text
                ; VCHAR except double quotes, plus obs-text

   An entity-tag can be more reliable for validation than a
   modification date in situations where it is inconvenient to store
   modification dates or where the one-second resolution of HTTP date
   values is insufficient.

3.1.  If-Match

   The "If-Match" header field makes the request method conditional on
   the recipient origin server either having at least one current
   representation of the target resource, when the field-value is "*",
   or having a current representation of the target resource that has
   an entity-tag matching a member of the list of entity-tags provided
   in the field-value.

     If-Match = "*" / 1#entity-tag

   An origin server MUST NOT perform the requested method if a received
   If-Match condition evaluates to false; instead, the origin server
   MUST respond with either the 412 (Precondition Failed) status code
   or one of the 2xx (Successful) status codes if the origin server has
   verified that a state change is being requested and the final state
   is already reflected in the current state of the target resource.

3.2.  If-None-Match

   The "If-None-Match" header field makes the request method
   conditional on a recipient cache or origin server either not having
   any current representation of the target resource, when the field-
   value is "*", or having a selected representation with an entity-tag
   that does not match any of those listed in the field-value.

     If-None-Match = "*" / 1#entity-tag

   An origin server MUST NOT perform the requested method if the
   condition evaluates to false; instead, the origin server MUST
   respond with either the 304 (Not Modified) status code if the
   request method is GET or HEAD or the 412 (Precondition Failed)
   status code for all other request methods.

   A recipient MUST ignore If-Modified-Since if the request contains an
   If-None-Match header field; the condition in If-None-Match is
   considered to be a more accurate replacement for the condition in
   If-Modified-Since, and the two are only combined for the sake of
   interoperating with older intermediaries that might not implement
   If-None-Match.

4.1.  304 Not Modified

   The 304 (Not Modified) status code indicates that a conditional GET
   or HEAD request has been received and would have resulted in a 200
   (OK) response if it were not for the fact that the condition
   evaluated to false.

   The server generating a 304 response MUST generate any of the
   following header fields that would have been sent in a 200 (OK)
   response to the same request: Cache-Control, Content-Location, Date,
   ETag, Expires, and Vary.  A 304 response cannot contain a message
   body; it is always terminated by the first empty line after the
   header fields.

Fielding & Reschke           Standards Track                   [Page 19]
)RFC";
}

}  // namespace hdiff::corpus
