// RFC 5234 (ABNF) excerpt: the core rules every other grammar references.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc5234_text() {
  return R"RFC(
RFC 5234                          ABNF                      January 2008

1.  Introduction

   Internet technical specifications often need to define a formal
   syntax and are free to employ whatever notation their authors deem
   useful.  Over the years, a modified version of Backus-Naur Form
   (BNF), called Augmented BNF (ABNF), has been popular among many
   Internet specifications.  It balances compactness and simplicity
   with reasonable representational power.

2.  Rule Definition

   Rules are named with the name of a rule being simply the name
   itself, that is, a sequence of characters, beginning with an
   alphabetic character, and followed by a combination of alphabetics,
   digits, and hyphens.  Rule names are case insensitive.  A rule
   definition is terminated by the end of line or by a comment.

   The operator "=/" is used for incremental alternatives, so that a
   rule may be defined in fragments.  A specification MUST NOT define a
   rule both with "=" and "=/" forms that conflict with each other.

   Angle brackets are used for a prose description when a formal
   grammar cannot express the requirement.  An implementation ought to
   treat prose values as opaque and consult the referenced document.

B.1.  Core Rules

   Certain basic rules are in uppercase, such as SP, HTAB, CRLF, DIGIT,
   and ALPHA.

         ALPHA          =  %x41-5A / %x61-7A   ; A-Z / a-z

         BIT            =  "0" / "1"

         CHAR           =  %x01-7F
                                ; any 7-bit US-ASCII character,
                                ;  excluding NUL

         CR             =  %x0D
                                ; carriage return

         CRLF           =  CR LF
                                ; Internet standard newline

         CTL            =  %x00-1F / %x7F
                                ; controls

         DIGIT          =  %x30-39
                                ; 0-9

         DQUOTE         =  %x22
                                ; " (Double Quote)

         HEXDIG         =  DIGIT / "A" / "B" / "C" / "D" / "E" / "F"

         HTAB           =  %x09
                                ; horizontal tab

         LF             =  %x0A
                                ; linefeed

         LWSP           =  *(WSP / CRLF WSP)
                                ; linear-white-space

         OCTET          =  %x00-FF
                                ; 8 bits of data

         SP             =  %x20

         VCHAR          =  %x21-7E
                                ; visible (printing) characters

         WSP            =  SP / HTAB
                                ; white space

Crocker & Overell           Standards Track                     [Page 13]
)RFC";
}

}  // namespace hdiff::corpus
