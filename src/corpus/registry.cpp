#include "corpus/registry.h"

#include <array>
#include <cctype>

#include "corpus/documents.h"
#include "text/sentence.h"

namespace hdiff::corpus {

namespace {

const std::array<Document, 8>& documents() {
  static const std::array<Document, 8> kDocs = {{
      {"rfc3986", "URI: Generic Syntax", rfc3986_text()},
      {"rfc5234", "Augmented BNF for Syntax Specifications", rfc5234_text()},
      {"rfc7230", "HTTP/1.1: Message Syntax and Routing", rfc7230_text()},
      {"rfc7231", "HTTP/1.1: Semantics and Content", rfc7231_text()},
      {"rfc7232", "HTTP/1.1: Conditional Requests", rfc7232_text()},
      {"rfc7233", "HTTP/1.1: Range Requests", rfc7233_text()},
      {"rfc7234", "HTTP/1.1: Caching", rfc7234_text()},
      {"rfc7235", "HTTP/1.1: Authentication", rfc7235_text()},
  }};
  return kDocs;
}

std::string lower_copy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::span<const Document> all_documents() { return documents(); }

std::vector<std::string_view> http_core_documents() {
  return {"rfc7230", "rfc7231", "rfc7232", "rfc7233", "rfc7234", "rfc7235"};
}

const Document* find_document(std::string_view name) {
  std::string key = lower_copy(name);
  for (const auto& doc : documents()) {
    if (doc.name == key) return &doc;
  }
  return nullptr;
}

CorpusSize measure(const Document& doc) {
  CorpusSize size;
  size.words = text::count_words(doc.text);
  size.valid_sentences = text::split_sentences(doc.text).size();
  return size;
}

CorpusSize measure_all() {
  CorpusSize total;
  for (const auto& doc : documents()) {
    CorpusSize s = measure(doc);
    total.words += s.words;
    total.valid_sentences += s.valid_sentences;
  }
  return total;
}

}  // namespace hdiff::corpus
