// RFC 7230 (HTTP/1.1 Message Syntax and Routing) excerpt: the core message
// grammar and the routing/framing requirements that drive HRS and HoT
// test-case generation.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7230_text() {
  return R"RFC(
RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

2.5.  Conformance and Error Handling

   This specification targets conformance criteria according to the
   role of a participant in HTTP communication.  Hence, HTTP
   requirements are placed on senders, recipients, clients, servers,
   user agents, intermediaries, origin servers, proxies, gateways, or
   caches, depending on what behavior is being constrained by the
   requirement.

   Conformance includes both the syntax and semantics of protocol
   elements.  A sender MUST NOT generate protocol elements that convey a
   meaning that is known by that sender to be false.  A sender MUST NOT
   generate protocol elements that do not match the grammar defined by
   the corresponding ABNF rules.

   Unless noted otherwise, a recipient MAY attempt to recover a usable
   protocol element from an invalid construct.  HTTP does not define
   specific error handling mechanisms except when they have a direct
   impact on security, since different applications of the protocol
   require different error handling strategies.

2.6.  Protocol Versioning

   HTTP uses a "<major>.<minor>" numbering scheme to indicate versions
   of the protocol.  The HTTP version number consists of two decimal
   digits separated by a "." (period or decimal point).

     HTTP-version  = HTTP-name "/" DIGIT "." DIGIT
     HTTP-name     = %x48.54.54.50 ; "HTTP", case-sensitive

   A server SHOULD send a response version equal to the highest version
   to which the server is conformant that has a major version less than
   or equal to the one received in the request.  A server MUST NOT send
   a version to which it is not conformant.  A server can send a 505
   (HTTP Version Not Supported) response if it wishes, for any reason,
   to refuse service of the client's major protocol version.

   The intermediary MUST send its own HTTP-version in forwarded
   messages, since intermediaries that blindly forward the received
   version can mislead the recipient about the capabilities of the
   sender.

2.7.  Uniform Resource Identifiers

   Uniform Resource Identifiers (URIs) are used throughout HTTP as the
   means for identifying resources.  URI references are used to target
   requests, indicate redirects, and define relationships.

     absolute-URI  = <absolute-URI, see [RFC3986], Section 4.3>
     relative-part = <relative-part, see [RFC3986], Section 4.2>
     authority     = <authority, see [RFC3986], Section 3.2>
     fragment      = <fragment, see [RFC3986], Section 3.5>
     path-abempty  = <path-abempty, see [RFC3986], Section 3.3>
     segment       = <segment, see [RFC3986], Section 3.3>
     query         = <query, see [RFC3986], Section 3.4>

2.7.1.  http URI Scheme

   The "http" URI scheme is hereby defined for the purpose of minting
   identifiers according to their association with the hierarchical
   namespace governed by a potential HTTP origin server listening for
   TCP connections on a given port.

     http-URI = "http:" "//" authority path-abempty [ "?" query ]
                [ "#" fragment ]

   A sender MUST NOT generate an "http" URI with an empty host
   identifier.  A recipient that processes such a URI reference MUST
   reject it as invalid.

3.  Message Format

   All HTTP/1.1 messages consist of a start-line followed by a sequence
   of octets in a format similar to the Internet Message Format:
   zero or more header fields (collectively referred to as the
   "headers" or the "header section"), an empty line indicating the end
   of the header section, and an optional message body.

     HTTP-message   = start-line
                      *( header-field CRLF )
                      CRLF
                      [ message-body ]

   The normal procedure for parsing an HTTP message is to read the
   start-line into a structure, read each header field into a hash
   table by field name until the empty line, and then use the parsed
   data to determine if a message body is expected.

   A sender MUST NOT send whitespace between the start-line and the
   first header field.  A recipient that receives whitespace between
   the start-line and the first header field MUST either reject the
   message as invalid or consume each whitespace-preceded line without
   further processing of it.

     start-line     = request-line / status-line

Fielding & Reschke           Standards Track                   [Page 21]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

3.1.1.  Request Line

   A request-line begins with a method token, followed by a single
   space (SP), the request-target, another single space (SP), the
   protocol version, and ends with CRLF.

     request-line   = method SP request-target SP HTTP-version CRLF

     method         = token

   Although the request-line grammar rule requires that each of the
   component elements be separated by a single SP octet, recipients MAY
   instead parse on whitespace-delimited word boundaries and, aside
   from the CRLF terminator, treat any form of whitespace as the SP
   separator while ignoring preceding or trailing whitespace.  Such
   whitespace includes one or more of the following octets: SP, HTAB,
   VT, FF, or bare CR.  However, lenient parsing can result in security
   vulnerabilities if other implementations within the request chain
   interpret the same message differently.

   HTTP does not place a predefined limit on the length of a
   request-line.  A server that receives a method longer than any that
   it implements SHOULD respond with a 501 (Not Implemented) status
   code.  A server that receives a request-target longer than any URI
   it wishes to parse MUST respond with a 414 (URI Too Long) status
   code.

3.1.2.  Status Line

   The first line of a response message is the status-line, consisting
   of the protocol version, a space (SP), the status code, another
   space, a possibly empty textual phrase describing the status code,
   and ending with CRLF.

     status-line    = HTTP-version SP status-code SP reason-phrase CRLF

     status-code    = 3DIGIT

     reason-phrase  = *( HTAB / SP / VCHAR / obs-text )

3.2.  Header Fields

   Each header field consists of a case-insensitive field name followed
   by a colon (":"), optional leading whitespace, the field value, and
   optional trailing whitespace.

     header-field   = field-name ":" OWS field-value OWS

     field-name     = token

     field-value    = *( field-content / obs-fold )

     field-content  = field-vchar [ 1*( SP / HTAB ) field-vchar ]

     field-vchar    = VCHAR / obs-text

     obs-fold       = CRLF 1*( SP / HTAB )
                    ; obsolete line folding

     obs-text       = %x80-FF

   The field-name token labels the corresponding field-value as having
   the semantics defined by that header field.

3.2.3.  Whitespace

   This specification uses three rules to denote the use of linear
   whitespace: OWS (optional whitespace), RWS (required whitespace), and
   BWS ("bad" whitespace).

     OWS            = *( SP / HTAB )
                    ; optional whitespace
     RWS            = 1*( SP / HTAB )
                    ; required whitespace
     BWS            = OWS
                    ; "bad" whitespace

3.2.6.  Field Value Components

   Most HTTP header field values are defined using common syntax
   components (token, quoted-string, and comment) separated by
   whitespace or specific delimiting characters.  Delimiters are chosen
   from the set of US-ASCII visual characters not allowed in a token.

     token          = 1*tchar

     tchar          = "!" / "#" / "$" / "%" / "&" / "'" / "*"
                    / "+" / "-" / "." / "^" / "_" / "`" / "|" / "~"
                    / DIGIT / ALPHA
                    ; any VCHAR, except delimiters

     quoted-string  = DQUOTE *( qdtext / quoted-pair ) DQUOTE
     qdtext         = HTAB / SP / %x21 / %x23-5B / %x5D-7E / obs-text

     quoted-pair    = "\" ( HTAB / SP / VCHAR / obs-text )

   A sender SHOULD NOT generate a quoted-pair in a quoted-string except
   where necessary to quote DQUOTE and backslash octets occurring
   within that string.

   No whitespace is allowed between the header field-name and colon.
   In the past, differences in the handling of such whitespace have led
   to security vulnerabilities in request routing and response
   handling.  A server MUST reject any received request message that
   contains whitespace between a header field-name and colon with a
   response code of 400 (Bad Request).  A proxy MUST remove any such
   whitespace from a response message before forwarding the message
   downstream.

   A field value might be preceded and/or followed by optional
   whitespace (OWS); a single SP preceding the field-value is preferred
   for consistent readability by humans.  The field value does not
   include any leading or trailing whitespace: OWS occurring before the
   first non-whitespace octet of the field value or after the last
   non-whitespace octet of the field value ought to be excluded by
   parsers when extracting the field value from a header field.

Fielding & Reschke           Standards Track                   [Page 23]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

   Historically, HTTP header field values could be extended over
   multiple lines by preceding each extra line with at least one space
   or horizontal tab (obs-fold).  This specification deprecates such
   line folding except within the message/http media type.  A sender
   MUST NOT generate a message that includes line folding (i.e., that
   has any field-value that contains a match to the obs-fold rule)
   unless the message is intended for packaging within the message/http
   media type.

   A server that receives an obs-fold in a request message that is not
   within a message/http container MUST either reject the message by
   sending a 400 (Bad Request), preferably with a representation
   explaining that obsolete line folding is unacceptable, or replace
   each received obs-fold with one or more SP octets prior to
   interpreting the field value or forwarding the message downstream.

   A proxy or gateway that receives an obs-fold in a response message
   that is not within a message/http container MUST either discard the
   message and replace it with a 502 (Bad Gateway) response, or replace
   each received obs-fold with one or more SP octets prior to
   interpreting the field value or forwarding the message downstream.

   A sender MUST NOT generate multiple header fields with the same
   field name in a message unless either the entire field value for
   that header field is defined as a comma-separated list or the header
   field is a well-known exception.

   A recipient MAY combine multiple header fields with the same field
   name into one "field-name: field-value" pair, without changing the
   semantics of the message, by appending each subsequent field value
   to the combined field value in order, separated by a comma.

   Order is important for message framing: a proxy MUST NOT change the
   order of these field values when forwarding a message.

3.2.4.  Field Parsing

   Messages are parsed using a generic algorithm, independent of the
   individual header field names.  The contents within a given field
   value are not parsed until a later stage of message interpretation.

   A server MUST reject any received request message that contains
   whitespace between a header field-name and colon with a response
   code of 400 (Bad Request).

3.3.  Message Body

   The message body (if any) of an HTTP message is used to carry the
   payload body of that request or response.  The message body is
   identical to the payload body unless a transfer coding has been
   applied.

     message-body = *OCTET

   The presence of a message body in a request is signaled by a
   Content-Length or Transfer-Encoding header field.  Request message
   framing is independent of method semantics, even if the method does
   not define any use for a message body.

3.3.1.  Transfer-Encoding

   The Transfer-Encoding header field lists the transfer coding names
   corresponding to the sequence of transfer codings that have been
   (or will be) applied to the payload body in order to form the
   message body.

     Transfer-Encoding = 1#transfer-coding

   Transfer-Encoding was added in HTTP/1.1.  It is generally assumed
   that implementations advertising only HTTP/1.0 support will not
   understand how to process a transfer-encoded payload.  A client MUST
   NOT send a request containing Transfer-Encoding unless it knows the
   server will handle HTTP/1.1 (or later) requests; such knowledge
   might be in the form of specific user configuration or by
   remembering the version of a prior received response.

   A server that receives a request message with a transfer coding it
   does not understand SHOULD respond with 501 (Not Implemented).

Fielding & Reschke           Standards Track                   [Page 28]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

3.3.2.  Content-Length

   When a message does not have a Transfer-Encoding header field, a
   Content-Length header field can provide the anticipated size, as a
   decimal number of octets, for a potential payload body.

     Content-Length = 1*DIGIT

   A sender MUST NOT send a Content-Length header field in any message
   that contains a Transfer-Encoding header field.

   A user agent SHOULD send a Content-Length in a request message when
   no Transfer-Encoding is sent and the request method defines a
   meaning for an enclosed payload body.

   A server MAY reject a request that contains a message body but not a
   Content-Length by responding with 411 (Length Required).

   Any Content-Length field value greater than or equal to zero is
   valid.  Since there is no predefined limit to the length of a
   payload, a recipient MUST anticipate potentially large decimal
   numerals and prevent parsing errors due to integer conversion
   overflows.

   If a message is received that has multiple Content-Length header
   fields with field-values consisting of the same decimal value, or a
   single Content-Length header field with a field value containing a
   list of identical decimal values (e.g., "Content-Length: 42, 42"),
   indicating that duplicate Content-Length header fields have been
   generated or combined by an upstream message processor, then the
   recipient MUST either reject the message as invalid or replace the
   duplicated field-values with a single valid Content-Length field
   containing that decimal value prior to determining the message body
   length or forwarding the message.

3.3.3.  Message Body Length

   The length of a message body is determined as follows:

   If a Transfer-Encoding header field is present and the chunked
   transfer coding is the final encoding, the message body length is
   determined by reading and decoding the chunked data until the
   transfer coding indicates the data is complete.

   If a Transfer-Encoding header field is present in a request and the
   chunked transfer coding is not the final encoding, the message body
   length cannot be determined reliably; the server MUST respond with
   the 400 (Bad Request) status code and then close the connection.

   If a message is received with both a Transfer-Encoding and a
   Content-Length header field, the Transfer-Encoding overrides the
   Content-Length.  Such a message might indicate an attempt to
   perform request smuggling or response splitting and ought to be
   handled as an error.  A sender MUST remove the received Content-
   Length field prior to forwarding such a message downstream.

   If a message is received without Transfer-Encoding and with either
   multiple Content-Length header fields having differing field-values
   or a single Content-Length header field having an invalid value,
   then the message framing is invalid and the recipient MUST treat it
   as an unrecoverable error.  If it is a request message, the server
   MUST respond with a 400 (Bad Request) status code and then close the
   connection.

   If a valid Content-Length header field is present without
   Transfer-Encoding, its decimal value defines the expected message
   body length in octets.  If the sender closes the connection or the
   recipient times out before the indicated number of octets are
   received, the recipient MUST consider the message to be incomplete
   and close the connection.

   If this is a request message and none of the above are true, then
   the message body length is zero (no message body is present).

Fielding & Reschke           Standards Track                   [Page 32]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

4.  Transfer Codings

   Transfer coding names are used to indicate an encoding
   transformation that has been, can be, or might need to be applied to
   a payload body in order to ensure safe transport through the
   network.

     transfer-coding    = "chunked"
                        / "compress"
                        / "deflate"
                        / "gzip"
                        / transfer-extension

     transfer-extension = token *( OWS ";" OWS transfer-parameter )

     transfer-parameter = token BWS "=" BWS ( token / quoted-string )

4.1.  Chunked Transfer Coding

   The chunked transfer coding wraps the payload body in order to
   transfer it as a series of chunks, each with its own size indicator,
   followed by an OPTIONAL trailer containing header fields.  Chunked
   enables content streams of unknown size to be transferred as a
   sequence of length-delimited buffers.

     chunked-body   = *chunk
                      last-chunk
                      trailer-part
                      CRLF

     chunk          = chunk-size [ chunk-ext ] CRLF
                      chunk-data CRLF
     chunk-size     = 1*HEXDIG
     last-chunk     = 1*("0") [ chunk-ext ] CRLF

     chunk-data     = 1*OCTET ; a sequence of chunk-size octets

     chunk-ext      = *( ";" chunk-ext-name [ "=" chunk-ext-val ] )

     chunk-ext-name = token
     chunk-ext-val  = token / quoted-string

     trailer-part   = *( header-field CRLF )

   The chunk-size field is a string of hex digits indicating the size
   of the chunk-data in octets.  A recipient MUST be able to parse and
   decode the chunked transfer coding.

   A recipient MUST ignore unrecognized chunk extensions.  A server
   ought to limit the total length of chunk extensions received in a
   request to an amount reasonable for the services provided.

   A sender MUST NOT apply chunked more than once to a message body
   (i.e., chunking an already chunked message is not allowed).  If any
   transfer coding other than chunked is applied to a request payload
   body, the sender MUST apply chunked as the final transfer coding to
   ensure that the message is properly framed.

   In the past, HTTP has incorrectly allowed the identity coding as a
   value of Transfer-Encoding.  The identity value is obsolete and a
   recipient that encounters it in a Transfer-Encoding header field
   ought to treat the message as invalid.

Fielding & Reschke           Standards Track                   [Page 36]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

4.2.  Compression Codings

   The codings defined below can be used to compress the payload of a
   message.

     compress-coding = "compress"
     deflate-coding  = "deflate"
     gzip-coding     = "gzip"

   A recipient SHOULD consider "x-compress" and "x-gzip" to be
   equivalent to "compress" and "gzip", respectively.

4.3.  TE

   The "TE" header field in a request indicates what transfer codings,
   besides chunked, the client is willing to accept in response, and
   whether or not the client is willing to accept trailer fields in a
   chunked transfer coding.

     TE        = #t-codings
     t-codings = "trailers" / ( transfer-coding [ t-ranking ] )
     t-ranking = OWS ";" OWS "q=" rank
     rank      = ( "0" [ "." 0*3DIGIT ] ) / ( "1" [ "." 0*3("0") ] )

   A sender of TE MUST also send a "TE" connection option within the
   Connection header field to inform intermediaries not to forward this
   field.

5.3.  Request Target

   Once an inbound connection is obtained, the client sends an HTTP
   request message with a request-target derived from the target URI.

     request-target = origin-form
                    / absolute-form
                    / authority-form
                    / asterisk-form

     origin-form    = absolute-path [ "?" query ]

     absolute-form  = absolute-URI

     authority-form = authority

     asterisk-form  = "*"

     absolute-path  = 1*( "/" segment )

   The most common form of request-target is the origin-form.  When
   making a request directly to an origin server, other than a CONNECT
   or server-wide OPTIONS request, a client MUST send only the absolute
   path and query components of the target URI as the request-target.

   When making a request to a proxy, other than a CONNECT or server-
   wide OPTIONS request, a client MUST send the target URI in
   absolute-form as the request-target.  An example absolute-form of
   request-line would be:

   GET http://www.example.org/pub/WWW/TheProject.html HTTP/1.1

   To allow for transition to the absolute-form for all requests in
   some future version of HTTP, a server MUST accept the absolute-form
   in requests, even though HTTP/1.1 clients will only send them in
   requests to proxies.

5.4.  Host

   The "Host" header field in a request provides the host and port
   information from the target URI, enabling the origin server to
   distinguish among resources while servicing requests for a single
   IP address.

     Host = uri-host [ ":" port ] ; Section 2.7.1

     uri-host = <host, see [RFC3986], Section 3.2.2>

     port = <port, see [RFC3986], Section 3.2.3>

   A client MUST send a Host header field in all HTTP/1.1 request
   messages.  If the target URI includes an authority component, then a
   client MUST send a field-value for Host that is identical to that
   authority component, excluding any userinfo subcomponent and its "@"
   delimiter.  If the authority component is missing or undefined for
   the target URI, then a client MUST send a Host header field with an
   empty field-value.

   A client MUST send a Host header field in an HTTP/1.1 request even
   if the request-target is in the absolute-form, since this allows the
   Host information to be forwarded through ancient HTTP/1.0 proxies
   that might not have implemented Host.

   When a proxy receives a request with an absolute-form of
   request-target, the proxy MUST ignore the received Host header field
   (if any) and instead replace it with the host information of the
   request-target.  A proxy that forwards such a request MUST generate
   a new Host field-value based on the received request-target rather
   than forward the received Host field-value.

   When an origin server receives a request with an absolute-form of
   request-target, the origin server MUST ignore the received Host
   header field (if any) and instead use the host information of the
   request-target.  Note that this is the only case in which a user
   agent is allowed to send a request with a userinfo subcomponent.

   A server MUST respond with a 400 (Bad Request) status code to any
   HTTP/1.1 request message that lacks a Host header field and to any
   request message that contains more than one Host header field or a
   Host header field with an invalid field-value.

Fielding & Reschke           Standards Track                   [Page 44]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

5.7.1.  Via

   The "Via" header field indicates the presence of intermediate
   protocols and recipients between the user agent and the server (on
   requests) or between the origin server and the client (on
   responses), similar to the "Received" header field in email.

     Via = 1#( received-protocol RWS received-by [ RWS comment ] )

     received-protocol = [ protocol-name "/" ] protocol-version

     received-by = ( uri-host [ ":" port ] ) / pseudonym

     pseudonym   = token

     protocol-name = token

     protocol-version = token

   An intermediary MUST NOT forward a message to itself unless it is
   protected from an infinite request loop.

6.1.  Connection

   The "Connection" header field allows the sender to indicate desired
   control options for the current connection.  In order to avoid
   confusing downstream recipients, a proxy or gateway MUST remove or
   replace any received connection options before forwarding the
   message.

     Connection        = 1#connection-option

     connection-option = token

   When a header field aside from Connection is used to supply control
   information for or about the current connection, the sender MUST
   list the corresponding field-name within the Connection header
   field.  A proxy or gateway MUST parse a received Connection header
   field before a message is forwarded and, for each connection-option
   in this field, remove any header field or fields from the message
   with the same name as the connection-option, and then remove the
   Connection header field itself (or replace it with the
   intermediary's own connection options for the forwarded message).

   Intermediaries SHOULD NOT echo hop-by-hop header fields toward the
   origin, because a sender of such fields can use them to remove
   headers that were intended for the recipient.  The Connection header
   field should not be abused to remove end-to-end header fields such
   as Host or Cookie from the forwarded message.

   A proxy or gateway MUST NOT forward hop-by-hop header fields such as
   Connection, Keep-Alive, Proxy-Connection, Transfer-Encoding, and
   Upgrade.

   A sender MUST NOT send a Connection header field that contains the
   field name Host, since Host is required for request routing and its
   removal would leave the recipient unable to identify the target
   resource.

6.3.  Persistence

   HTTP/1.1 defaults to the use of persistent connections, allowing
   multiple requests and responses to be carried over a single
   connection.  A recipient determines whether a connection is
   persistent or not based on the most recently received message's
   protocol version and Connection header field (if any).

   A server that does not support persistent connections MUST send the
   "close" connection option in every response message that does not
   have a 1xx (Informational) status code.

   A client that pipelines requests SHOULD retry unanswered requests if
   the connection closes before it receives the final response.  A user
   agent MUST NOT pipeline requests after a non-idempotent method until
   the final response status code for that method has been received,
   unless the user agent has a means to detect and recover from partial
   failure conditions involving the pipelined sequence.

6.7.  Upgrade

   The "Upgrade" header field is intended to provide a simple mechanism
   for transitioning from HTTP/1.1 to some other protocol on the same
   connection.

     Upgrade          = 1#protocol

     protocol         = protocol-name [ "/" protocol-version ]

   A server that sends a 101 (Switching Protocols) response MUST send
   an Upgrade header field to indicate the new protocol(s) to which the
   connection is being switched; if multiple protocol layers are being
   switched, the sender MUST list the protocols in layer-ascending
   order.

   A server MUST ignore an Upgrade header field that is received in an
   HTTP/1.0 request.  A client cannot begin using an upgraded protocol
   on the connection until it has completely sent the request message.

   A sender of Upgrade MUST also send an "Upgrade" connection option in
   the Connection header field to inform intermediaries not to forward
   this field.

9.  Security Considerations

   This section is meant to inform developers, information providers,
   and users of known security concerns relevant to HTTP message syntax
   and routing.

9.4.  Message Integrity

   The design of HTTP/1.1 message framing does not include a means of
   detecting accidental or malicious modification.  A vulnerability to
   request smuggling arises when a message can be parsed with different
   framing by different recipients.  If an intermediary and an origin
   server disagree about the boundary between one message and the
   next, an attacker can cause part of one request to be interpreted
   as the start of another request.  Implementations that accept
   ambiguous framing, such as conflicting Content-Length and
   Transfer-Encoding header fields, expose every other participant on
   the connection to this attack.

Fielding & Reschke           Standards Track                   [Page 66]
)RFC";
}

}  // namespace hdiff::corpus
