// RFC 7233 (Range Requests) excerpt.
#include "corpus/documents.h"

namespace hdiff::corpus {

std::string_view rfc7233_text() {
  return R"RFC(
RFC 7233                 HTTP/1.1 Range Requests               June 2014

2.1.  Byte Ranges

   Since representation data is transferred in payloads as a sequence
   of octets, a byte range is a meaningful substructure for any
   representation transferable over HTTP.  The "bytes" range unit is
   defined for expressing subranges of the data's octet sequence.

     bytes-unit       = "bytes"

     byte-ranges-specifier = bytes-unit "=" byte-range-set

     byte-range-set  = 1#( byte-range-spec / suffix-byte-range-spec )

     byte-range-spec = first-byte-pos "-" [ last-byte-pos ]

     first-byte-pos  = 1*DIGIT

     last-byte-pos   = 1*DIGIT

   A byte-range-spec is invalid if the last-byte-pos value is present
   and less than the first-byte-pos.  A recipient of an invalid
   byte-range-spec MUST ignore it.

     suffix-byte-range-spec = "-" suffix-length

     suffix-length = 1*DIGIT

3.1.  Range

   The "Range" header field on a GET request modifies the method
   semantics to request transfer of only one or more subranges of the
   selected representation data, rather than the entire selected
   representation data.

     Range = byte-ranges-specifier / other-ranges-specifier

     other-ranges-specifier = other-range-unit "=" other-range-set

     other-range-set = 1*VCHAR

     other-range-unit = token

   A server MUST ignore a Range header field received with a request
   method other than GET.  An origin server MUST ignore a Range header
   field that contains a range unit it does not understand.  A proxy
   MAY discard a Range header field that contains a range unit it does
   not understand.

   A server that supports range requests MAY ignore or reject a Range
   header field that consists of more than two overlapping ranges, or a
   set of many small ranges that are not listed in ascending order,
   since both are indications of either a broken client or a deliberate
   denial-of-service attack.

   A client that is requesting multiple ranges SHOULD list those ranges
   in ascending order (the order in which they would typically be
   received in a complete representation) unless there is a specific
   need to request a later part earlier.

4.2.  Content-Range

   The "Content-Range" header field is sent in a single part 206
   (Partial Content) response to indicate the partial range of the
   selected representation enclosed as the message payload, sent in
   each part of a multipart 206 response to indicate the range enclosed
   within each body part, and sent in 416 (Range Not Satisfiable)
   responses to provide information about the selected representation.

     Content-Range       = byte-content-range / other-content-range

     byte-content-range  = bytes-unit SP ( byte-range-resp / unsatisfied-range )

     byte-range-resp     = byte-range "/" ( complete-length / "*" )

     byte-range          = first-byte-pos "-" last-byte-pos

     unsatisfied-range   = "*/" complete-length

     complete-length     = 1*DIGIT

     other-content-range = other-range-unit SP other-range-resp

     other-range-resp    = *CHAR

   If a 206 (Partial Content) response contains a Content-Range header
   field with a range unit that the recipient does not understand, the
   recipient MUST NOT attempt to recombine it with a stored
   representation.  A proxy that receives such a message SHOULD forward
   it downstream.

Fielding, et al.            Standards Track                    [Page 12]
)RFC";
}

}  // namespace hdiff::corpus
